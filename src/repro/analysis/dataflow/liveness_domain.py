"""Backward dataflow: register liveness and co-reachability.

The two instantiations of :class:`~repro.analysis.dataflow.framework.BackwardProblem`
that power the ``DF006``/``DF007``/``DF008`` passes
(:mod:`repro.analysis.passes_dataflow`) and the sound reduction layer
(:mod:`repro.core.reduction`).

Register liveness
-----------------
The domain element at a control state is the *set of live registers*: a
register is live at ``q`` iff some guard on some path from ``q`` can
*read* its current content before every corridor carrying that content is
cut.  Reads are computed by :func:`guard_read_registers` -- a comparison
with another current register, a disequality, a relational literal, or a
constant/foreign-variable equality observes a value; a pure copy
``x_i = y_j`` does not read by itself, it only *forwards* the value, so
the backward transfer turns it into a read exactly when the written
register is live after the step::

    live(q)  >=  union over transitions (q --delta--> q') of
                 reads(delta)  |  { i : images_delta[i] & live(q') != {} }

where ``images_delta = y_successor_images(delta, k)`` are the paper's
equality corridors.  The lattice is the plain powerset of registers
(2^k states of information, never materialised), so unlike the forward
Bell-number domain it is cheap at every ``k`` the antichain cap admits --
the register cap here is :data:`~repro.analysis.dataflow.equality_domain.MAX_REGISTERS`
in *both* domain modes.

Soundness invariant (checked by the tests against brute-force bounded
runs): if register ``i`` is *not* live at ``q``, then no continuation of
any run from ``q`` can observe the value stored in ``i`` -- replacing it
with any fresh value preserves the set of accepting continuations.

Co-reachability
---------------
The second backward problem computes, per state, the set of *anchors* --
accepting states on an abstractly feasible cycle -- still abstractly
reachable from it, flowing anchor sets backwards over transitions the
forward reachable-equality-types analysis certifies feasible.  A state
with an empty anchor set admits no accepting lasso continuation; this is
the semantic refinement of the graph-level ``RA111`` co-accessibility
check (a state can be graph-co-accessible while every path to an
accepting cycle is cut by an infeasible guard).  The facts are sound at
forward-reachable states: a valid accepting run suffix from a reachable
state only uses feasible transitions and pumps a feasible accepting
cycle, so its anchor is found.

Budgets
-------
Both analyses mirror :func:`~repro.analysis.dataflow.equality_domain.reachable_types_outcome`:
one :class:`~repro.foundations.resilience.Budget` hierarchy
(``dataflow`` -> ``registers`` / ``edges``), an ``RS004`` event on every
declination, and a ``DEGRADED`` outcome whose stats carry the snapshot.
Consumers of the plain ``analyze_*`` wrappers treat ``None`` as "no
information" and behave as if the analysis never ran.
"""

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.foundations.diagnostics import Severity
from repro.foundations.resilience import Budget, Outcome, record_event
from repro.core.register_automaton import RegisterAutomaton, State, Transition
from repro.logic.terms import X, register_index
from repro.logic.types import SigmaType, y_successor_images
from repro.analysis.dataflow.framework import (
    BackwardProblem,
    PowersetLattice,
    solve_backward,
)
from repro.analysis.dataflow.equality_domain import (
    DEFAULT_EDGE_BUDGET,
    MAX_REGISTERS,
    analyze_reachable_types,
)

__all__ = [
    "guard_read_registers",
    "RegisterLiveness",
    "CoReachability",
    "register_liveness_outcome",
    "analyze_register_liveness",
    "co_reachability_outcome",
    "analyze_co_reachability",
]

#: Cone certificates (DF006 payloads) list at most this many states.
PROOF_CONE_CAP = 25


def guard_read_registers(delta: SigmaType, k: int) -> Tuple[int, ...]:
    """The registers whose *current* value the guard observes.

    A guard reads ``x_i`` when its enabledness, or the constraint it
    imposes on other values, depends on the content of register ``i``:

    * the equality closure forces ``x_i`` equal to another current
      register -- a comparison, even when stated through ``y``-corridors
      (``x1 = y2 and x2 = y2`` entails ``x1 = x2``);
    * a literal that observes a value -- any negative literal, any
      relational literal, any equality touching a constant or a
      non-register variable -- mentions a term in ``x_i``'s class.

    Positive register-to-register equalities that survive both filters
    are pure copies: they forward the value without inspecting it, and
    the backward liveness transfer counts them as reads exactly when the
    written register is live after the step.  Cached on the type
    instance per *k*, like its sibling accessors in
    :mod:`repro.logic.types`.
    """
    cache = delta.__dict__.get("_read_registers")
    if cache is None:
        cache = delta.__dict__["_read_registers"] = {}
    found = cache.get(k)
    if found is None:
        closure = delta.closure
        reads: Set[int] = set()
        for i in range(1, k + 1):
            for m in range(i + 1, k + 1):
                if closure.same(X(i), X(m)):
                    reads.add(i)
                    reads.add(m)
        for literal in delta.canonical_literals:
            observing = not literal.positive or not literal.is_equality()
            if not observing:
                observing = any(
                    register_index(term) is None for term in literal.terms
                )
            if not observing:
                continue
            for term in literal.terms:
                for i in range(1, k + 1):
                    if i not in reads and closure.same(X(i), term):
                        reads.add(i)
        found = cache[k] = tuple(sorted(reads))
    return found


class _LivenessProblem(BackwardProblem[FrozenSet[int]]):
    """The backward problem: nodes are control states, labels transitions."""

    def __init__(self, automaton: RegisterAutomaton) -> None:
        self.lattice = PowersetLattice()
        self._automaton = automaton
        self._k = automaton.k

    def nodes(self):
        return self._automaton.states

    def exit(self, node: State) -> FrozenSet[int]:
        # Acceptance is by control states alone; no register is read at
        # the boundary.
        return frozenset()

    def out_edges(self, node: State):
        return ((t, t.target) for t in self._automaton.transitions_from(node))

    def transfer(
        self, transition: Transition, value: FrozenSet[int]
    ) -> FrozenSet[int]:
        guard = transition.guard
        k = self._k
        live: Set[int] = set(guard_read_registers(guard, k))
        if value:
            images = y_successor_images(guard, k)
            for i in range(1, k + 1):
                if i not in live and images[i] & value:
                    live.add(i)
        return frozenset(live)


class RegisterLiveness:
    """The solved liveness analysis: live registers per control state.

    ``per_state[q]`` is the set of registers some future guard can read
    from ``q``; its complement (:meth:`dead_at`) is a proof that the
    register's content at ``q`` can never matter again.  All query
    methods are deterministic functions of the automaton structure.
    """

    __slots__ = ("automaton", "per_state", "iterations", "edge_evaluations")

    def __init__(
        self,
        automaton: RegisterAutomaton,
        per_state: Dict[State, FrozenSet[int]],
        iterations: int,
        edge_evaluations: int,
    ) -> None:
        self.automaton = automaton
        self.per_state = per_state
        self.iterations = iterations
        self.edge_evaluations = edge_evaluations

    def live_at(self, state: State) -> FrozenSet[int]:
        return self.per_state.get(state, frozenset())

    def dead_at(self, state: State) -> Tuple[int, ...]:
        """Registers provably never read after *state* (sorted)."""
        live = self.live_at(state)
        return tuple(
            i for i in range(1, self.automaton.k + 1) if i not in live
        )

    def read_registers(self) -> Tuple[int, ...]:
        """Registers some guard reads (sorted union over all transitions)."""
        k = self.automaton.k
        reads: Set[int] = set()
        for transition in self.automaton.transitions:
            reads.update(guard_read_registers(transition.guard, k))
        return tuple(sorted(reads))

    def mentioned_registers(self) -> Tuple[int, ...]:
        """Registers some guard mentions at all (``x`` or ``y`` side)."""
        mentioned: Set[int] = set()
        for transition in self.automaton.transitions:
            for variable in transition.guard.variables:
                decomposed = register_index(variable)
                if decomposed is not None and decomposed[1] <= self.automaton.k:
                    mentioned.add(decomposed[1])
        return tuple(sorted(mentioned))

    def write_only_registers(self) -> Tuple[int, ...]:
        """Registers that are written/constrained but live at *no* state.

        The projection candidates of the ``DF008`` pass: their stored
        content can never be observed -- not read by any guard, and never
        copied into a register that is live afterwards (``x3 = y1`` with
        register 1 read later makes register 3 observable *through*
        register 1, so "never read directly" alone would be unsound) --
        which is exactly "live nowhere" in the fixpoint.  These are the
        registers :func:`repro.core.reduction.project_dead_registers`
        can drop while preserving the emptiness verdict.  Registers no
        guard mentions at all are excluded -- ``RA120`` covers those.
        """
        live_somewhere: Set[int] = set()
        for live in self.per_state.values():
            live_somewhere |= live
        return tuple(
            i
            for i in self.mentioned_registers()
            if i not in live_somewhere
        )

    def never_read_proof(
        self, state: State, register: int, cap: int = PROOF_CONE_CAP
    ) -> dict:
        """A machine-checkable "never read after here" certificate.

        Walks the forward cone of *state* (FIFO, declaration-ordered
        transitions, so the payload is deterministic) and records, per
        step, the guard's read set and the live registers the tracked
        register's corridor flows into -- both empty everywhere is
        exactly the closure property the fixpoint proved.  Truncated
        past *cap* states so diagnostics on large automata stay small.
        """
        cone: List[dict] = []
        seen = {state}
        frontier: List[State] = [state]
        truncated = False
        k = self.automaton.k
        while frontier:
            if len(cone) >= cap:
                truncated = True
                break
            current = frontier.pop(0)
            steps: List[dict] = []
            for transition in self.automaton.transitions_from(current):
                images = y_successor_images(transition.guard, k)
                steps.append(
                    {
                        "transition": repr(transition),
                        "reads": list(guard_read_registers(transition.guard, k)),
                        "flows_into_live": sorted(
                            images[register] & self.live_at(transition.target)
                        ),
                    }
                )
                if transition.target not in seen:
                    seen.add(transition.target)
                    frontier.append(transition.target)
            cone.append(
                {
                    "state": repr(current),
                    "dead_here": register not in self.live_at(current),
                    "steps": steps,
                }
            )
        return {"register": register, "cone": cone, "truncated": truncated}


class _CoReachabilityProblem(BackwardProblem[FrozenSet[State]]):
    """Anchor sets flowing backwards over feasible transitions."""

    def __init__(
        self,
        automaton: RegisterAutomaton,
        anchors: FrozenSet[State],
        feasible: FrozenSet[Transition],
    ) -> None:
        self.lattice = PowersetLattice()
        self._automaton = automaton
        self._anchors = anchors
        self._feasible = feasible

    def nodes(self):
        return self._automaton.states

    def exit(self, node: State) -> FrozenSet[State]:
        if node in self._anchors:
            return frozenset((node,))
        return frozenset()

    def out_edges(self, node: State):
        return ((t, t.target) for t in self._automaton.transitions_from(node))

    def transfer(
        self, transition: Transition, value: FrozenSet[State]
    ) -> FrozenSet[State]:
        if transition not in self._feasible:
            return frozenset()
        return value


class CoReachability:
    """The solved co-reachability analysis: reachable anchors per state.

    ``anchors`` are the accepting states sitting on an abstractly
    feasible cycle; ``per_state[q]`` the anchors abstractly reachable
    from ``q``.  An empty set at a *forward-reachable* state is a proof
    that no accepting lasso continuation exists from it (see the module
    docstring for the soundness precondition).
    """

    __slots__ = (
        "automaton",
        "anchors",
        "per_state",
        "iterations",
        "edge_evaluations",
    )

    def __init__(
        self,
        automaton: RegisterAutomaton,
        anchors: FrozenSet[State],
        per_state: Dict[State, FrozenSet[State]],
        iterations: int,
        edge_evaluations: int,
    ) -> None:
        self.automaton = automaton
        self.anchors = anchors
        self.per_state = per_state
        self.iterations = iterations
        self.edge_evaluations = edge_evaluations

    def anchors_from(self, state: State) -> FrozenSet[State]:
        return self.per_state.get(state, frozenset())

    def is_co_reachable(self, state: State) -> bool:
        return bool(self.anchors_from(state))

    def co_reachable_states(self) -> Tuple[State, ...]:
        return tuple(
            state
            for state in sorted(self.automaton.states, key=repr)
            if self.is_co_reachable(state)
        )

    def non_co_reachable_states(self) -> Tuple[State, ...]:
        return tuple(
            state
            for state in sorted(self.automaton.states, key=repr)
            if not self.is_co_reachable(state)
        )


def _declined(budget: Budget, automaton: RegisterAutomaton, reason: str, what: str):
    snapshot = budget.snapshot()
    record_event(
        "RS004",
        "%s analysis declined (%s) for %d-register automaton"
        % (what, reason, automaton.k),
        severity=Severity.INFO,
        location="repro.analysis.dataflow.liveness_domain",
        data={"reason": reason, "budget": snapshot},
    )
    return Outcome.degraded(None, reason=reason, budget=snapshot)


def register_liveness_outcome(
    automaton: RegisterAutomaton,
    max_edge_evaluations: Optional[int] = DEFAULT_EDGE_BUDGET,
) -> "Outcome[RegisterLiveness]":
    """The register-liveness analysis as a budgeted outcome.

    ``COMPLETE`` carries the solved :class:`RegisterLiveness`;
    ``DEGRADED`` carries no value and a ``reason`` of ``"register-cap"``
    (more than :data:`~repro.analysis.dataflow.equality_domain.MAX_REGISTERS`
    registers) or ``"edge-budget"`` (the backward solver exhausted
    *max_edge_evaluations* transfer applications).  The stats always
    include the budget snapshot, exposed to CI through the diagnostics
    that consume this analysis.
    """
    budget = Budget("dataflow")
    registers = budget.scope("registers", MAX_REGISTERS)
    edges = budget.scope("edges", max_edge_evaluations)
    if not registers.charge(automaton.k):
        return _declined(budget, automaton, "register-cap", "liveness")
    result = solve_backward(_LivenessProblem(automaton), edges)
    if result is None:
        return _declined(budget, automaton, "edge-budget", "liveness")
    return Outcome.complete(
        RegisterLiveness(
            automaton, result.values, result.iterations, result.edge_evaluations
        ),
        budget=budget.snapshot(),
    )


def analyze_register_liveness(
    automaton: RegisterAutomaton,
    max_edge_evaluations: Optional[int] = DEFAULT_EDGE_BUDGET,
) -> Optional[RegisterLiveness]:
    """Run the liveness analysis; ``None`` when over budget.

    ``None`` means "no information" and every consumer must behave
    exactly as if the analysis never ran (the no-op degradation shared
    with :func:`~repro.analysis.dataflow.equality_domain.analyze_reachable_types`).
    """
    return register_liveness_outcome(automaton, max_edge_evaluations).value


def _feasible_cycle_anchors(
    automaton: RegisterAutomaton,
    feasible_targets: Dict[State, Tuple[State, ...]],
    edges: "Budget",
) -> Optional[FrozenSet[State]]:
    """Accepting states on a cycle of feasible transitions.

    One bounded BFS per accepting state (sorted, so the charge sequence
    is deterministic); ``None`` when the edge budget trips mid-search.
    """
    anchors: Set[State] = set()
    for anchor in sorted(automaton.accepting, key=repr):
        seen: Set[State] = set()
        frontier: List[State] = [anchor]
        found = False
        while frontier and not found:
            current = frontier.pop(0)
            for target in feasible_targets.get(current, ()):
                if not edges.charge():
                    return None
                if target == anchor:
                    found = True
                    break
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        if found:
            anchors.add(anchor)
    return frozenset(anchors)


def co_reachability_outcome(
    automaton: RegisterAutomaton,
    max_edge_evaluations: Optional[int] = DEFAULT_EDGE_BUDGET,
) -> "Outcome[CoReachability]":
    """The co-reachability analysis as a budgeted outcome.

    Degrades (value ``None``) with reason ``"register-cap"``,
    ``"forward-analysis"`` (the reachable-equality-types prerequisite
    itself declined -- over its register cap or edge budget), or
    ``"edge-budget"`` (the anchor search or the backward solve exhausted
    *max_edge_evaluations*).
    """
    budget = Budget("dataflow")
    registers = budget.scope("registers", MAX_REGISTERS)
    edges = budget.scope("edges", max_edge_evaluations)
    if not registers.charge(automaton.k):
        return _declined(budget, automaton, "register-cap", "co-reachability")
    types = analyze_reachable_types(automaton, max_edge_evaluations)
    if types is None:
        return _declined(budget, automaton, "forward-analysis", "co-reachability")
    feasible = tuple(
        t for t in automaton.transitions if types.feasible(t)
    )
    feasible_targets: Dict[State, List[State]] = {}
    for transition in feasible:
        feasible_targets.setdefault(transition.source, []).append(
            transition.target
        )
    anchors = _feasible_cycle_anchors(
        automaton,
        {s: tuple(ts) for s, ts in feasible_targets.items()},
        edges,
    )
    if anchors is None:
        return _declined(budget, automaton, "edge-budget", "co-reachability")
    problem = _CoReachabilityProblem(automaton, anchors, frozenset(feasible))
    result = solve_backward(problem, edges)
    if result is None:
        return _declined(budget, automaton, "edge-budget", "co-reachability")
    return Outcome.complete(
        CoReachability(
            automaton,
            anchors,
            result.values,
            result.iterations,
            result.edge_evaluations,
        ),
        budget=budget.snapshot(),
    )


def analyze_co_reachability(
    automaton: RegisterAutomaton,
    max_edge_evaluations: Optional[int] = DEFAULT_EDGE_BUDGET,
) -> Optional[CoReachability]:
    """Run the co-reachability analysis; ``None`` when over budget."""
    return co_reachability_outcome(automaton, max_edge_evaluations).value
