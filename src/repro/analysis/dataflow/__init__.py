"""Fixpoint dataflow analyses over register automata.

``framework`` is the generic worklist solver (lattice protocol, forward
*and* backward problems, budgeted fixpoints); ``equality_domain``
instantiates it forward with the reachable-equality-types domain used by
the ``DF001``--``DF005`` analysis passes
(:mod:`repro.analysis.passes_dataflow`) and the sound pruner
(:mod:`repro.core.pruning`); ``liveness_domain`` instantiates it backward
with register liveness and co-reachability, feeding the
``DF006``--``DF008`` passes and the reduction layer
(:mod:`repro.core.reduction`).  See docs/ANALYSIS.md ("Dataflow
analyses" and "Backward dataflow") for the lattices, the soundness
arguments, and the diagnostic codes.
"""

from repro.analysis.dataflow.framework import (
    BackwardProblem,
    FixpointResult,
    ForwardProblem,
    Lattice,
    PowersetLattice,
    SubsumptionLattice,
    solve_backward,
    solve_forward,
)
from repro.analysis.dataflow.equality_domain import (
    DEFAULT_EDGE_BUDGET,
    EXPLICIT_MAX_REGISTERS,
    MAX_REGISTERS,
    ReachableTypes,
    SymbolicReachableTypes,
    analyze_reachable_types,
    antichain_enabled,
    reachable_types_outcome,
)
from repro.analysis.dataflow.liveness_domain import (
    CoReachability,
    RegisterLiveness,
    analyze_co_reachability,
    analyze_register_liveness,
    co_reachability_outcome,
    guard_read_registers,
    register_liveness_outcome,
)

__all__ = [
    "Lattice",
    "PowersetLattice",
    "SubsumptionLattice",
    "ForwardProblem",
    "BackwardProblem",
    "FixpointResult",
    "solve_forward",
    "solve_backward",
    "ReachableTypes",
    "SymbolicReachableTypes",
    "analyze_reachable_types",
    "antichain_enabled",
    "reachable_types_outcome",
    "RegisterLiveness",
    "CoReachability",
    "guard_read_registers",
    "analyze_register_liveness",
    "register_liveness_outcome",
    "analyze_co_reachability",
    "co_reachability_outcome",
    "MAX_REGISTERS",
    "EXPLICIT_MAX_REGISTERS",
    "DEFAULT_EDGE_BUDGET",
]
