"""Forward-fixpoint dataflow analyses over register automata.

``framework`` is the generic worklist solver (lattice protocol, forward
problems, budgeted fixpoints); ``equality_domain`` instantiates it with
the reachable-equality-types domain used by the ``DF0xx`` analysis passes
(:mod:`repro.analysis.passes_dataflow`) and the sound pruner
(:mod:`repro.core.pruning`).  See docs/ANALYSIS.md ("Dataflow analyses")
for the lattice, the soundness argument, and the diagnostic codes.
"""

from repro.analysis.dataflow.framework import (
    FixpointResult,
    ForwardProblem,
    Lattice,
    PowersetLattice,
    SubsumptionLattice,
    solve_forward,
)
from repro.analysis.dataflow.equality_domain import (
    DEFAULT_EDGE_BUDGET,
    EXPLICIT_MAX_REGISTERS,
    MAX_REGISTERS,
    ReachableTypes,
    SymbolicReachableTypes,
    analyze_reachable_types,
    antichain_enabled,
    reachable_types_outcome,
)

__all__ = [
    "Lattice",
    "PowersetLattice",
    "SubsumptionLattice",
    "ForwardProblem",
    "FixpointResult",
    "solve_forward",
    "ReachableTypes",
    "SymbolicReachableTypes",
    "analyze_reachable_types",
    "antichain_enabled",
    "reachable_types_outcome",
    "MAX_REGISTERS",
    "EXPLICIT_MAX_REGISTERS",
    "DEFAULT_EDGE_BUDGET",
]
