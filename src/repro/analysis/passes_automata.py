"""Analysis passes over :class:`~repro.core.register_automaton.RegisterAutomaton`.

Code blocks (see ``docs/ANALYSIS.md`` for the full table):

* ``RA0xx`` -- structural well-formedness, shared verbatim with
  construction-time validation via
  :meth:`RegisterAutomaton.structural_diagnostics`;
* ``RA10x`` -- guard satisfiability (congruence closure);
* ``RA11x`` -- control-flow liveness (unreachable / dead states, vacuous
  Buchi acceptance);
* ``RA12x`` -- register liveness (registers no guard ever constrains);
* ``RA13x`` -- completeness relative to Example 2's normal form;
* ``RA14x`` -- determinism relative to Example 3's state-driven form.
"""

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.core.register_automaton import RegisterAutomaton, State
from repro.foundations.diagnostics import Diagnostic, error, info, warning
from repro.logic.closure import EqualityClosure
from repro.logic.terms import X, Y

from repro.analysis.engine import analysis_pass

#: Obligation budget above which the completeness pass refuses to enumerate
#: (the check is exponential in the vocabulary; Example 2's blow-up).
COMPLETENESS_OBLIGATION_CAP = 20_000


@analysis_pass(
    "structure",
    RegisterAutomaton,
    codes=("RA001", "RA002", "RA003", "RA004", "RA005", "RA006"),
)
def structure_pass(automaton: RegisterAutomaton) -> Iterable[Diagnostic]:
    """Re-run the construction-time structural validation (one codepath)."""
    return automaton.structural_diagnostics()


@analysis_pass("guard-sat", RegisterAutomaton, codes=("RA101",))
def guard_satisfiability_pass(automaton: RegisterAutomaton) -> Iterator[Diagnostic]:
    """Unsatisfiable guards, re-derived from the congruence closure.

    ``SigmaType`` verifies satisfiability at construction unless built with
    ``check=False``; this pass closes that hole by re-running the
    union-find closure on every distinct guard.
    """
    seen = set()
    for transition in automaton.transitions:
        guard = transition.guard
        if guard in seen:
            continue
        seen.add(guard)
        if not EqualityClosure(guard.literals).is_consistent():
            yield error(
                "RA101",
                "guard %s is unsatisfiable: no transition on it can ever fire"
                % guard.pretty(),
                repr(transition),
            )


def _forward_reachable(automaton: RegisterAutomaton) -> Set[State]:
    seen: Set[State] = set(automaton.initial)
    frontier: List[State] = list(seen)
    while frontier:
        state = frontier.pop()
        for transition in automaton.transitions_from(state):
            if transition.target not in seen:
                seen.add(transition.target)
                frontier.append(transition.target)
    return seen


def _coaccessible(automaton: RegisterAutomaton) -> Set[State]:
    """States from which some accepting state is reachable."""
    predecessors: Dict[State, List[State]] = {}
    for transition in automaton.transitions:
        predecessors.setdefault(transition.target, []).append(transition.source)
    live: Set[State] = set(automaton.accepting)
    frontier: List[State] = list(live)
    while frontier:
        state = frontier.pop()
        for predecessor in predecessors.get(state, ()):
            if predecessor not in live:
                live.add(predecessor)
                frontier.append(predecessor)
    return live


@analysis_pass(
    "control-liveness", RegisterAutomaton, codes=("RA110", "RA111", "RA112")
)
def control_liveness_pass(automaton: RegisterAutomaton) -> Iterator[Diagnostic]:
    """Unreachable states, dead states, vacuous Buchi acceptance.

    Uses the precomputed :class:`~repro.core.caching.AutomatonIndex`
    transition tables for the forward sweep, so repeated analysis of the
    same automaton does not rebuild adjacency.
    """
    if not automaton.accepting:
        yield warning(
            "RA112",
            "no accepting states: the Buchi acceptance condition is "
            "unsatisfiable, the language is empty",
        )
    reachable = _forward_reachable(automaton)
    live = _coaccessible(automaton)
    for state in sorted(automaton.states - reachable, key=repr):
        yield warning(
            "RA110",
            "state is unreachable from the initial states",
            "state %r" % (state,),
        )
    for state in sorted((automaton.states & reachable) - live, key=repr):
        yield warning(
            "RA111",
            "state is dead: no accepting state is reachable from it",
            "state %r" % (state,),
        )
    if automaton.accepting and not (reachable & live):
        yield warning(
            "RA112",
            "no accepting state is reachable: the language is empty",
        )


@analysis_pass("register-liveness", RegisterAutomaton, codes=("RA120",))
def register_liveness_pass(automaton: RegisterAutomaton) -> Iterator[Diagnostic]:
    """Registers never constrained by any guard.

    A register that no guard mentions (neither its ``x`` nor its ``y``
    variable) carries arbitrary values; projecting onto it (Theorem 13 /
    24) yields a vacuous view, so its presence is almost always a spec
    mistake or a leftover of a widening construction.
    """
    mentioned = set()
    for transition in automaton.transitions:
        mentioned.update(transition.guard.variables)
    for index in range(1, automaton.k + 1):
        if X(index) not in mentioned and Y(index) not in mentioned:
            yield warning(
                "RA120",
                "register %d is never constrained by any guard; projection "
                "onto it is vacuous" % index,
            )


def _completion_obligation_count(automaton: RegisterAutomaton) -> int:
    variables, constants = automaton.guard_vocabulary()
    terms = len(variables) + len(constants)
    count = len(variables) * (len(variables) - 1) // 2 + len(variables) * len(constants)
    for arity in automaton.signature.relations.values():
        count += terms ** arity
    return count


@analysis_pass("completeness", RegisterAutomaton, codes=("RA130", "RA131", "RA139"))
def completeness_pass(automaton: RegisterAutomaton) -> Iterator[Diagnostic]:
    """Completeness relative to Example 2's normal form (informational).

    Reports guards that leave an equality or relational atom unsettled;
    ``completed()`` / ``equality_completed()`` outputs are certified clean.
    The full check enumerates every atom over the vocabulary (exponential
    in relation arity), so it bails out with ``RA139`` past
    :data:`COMPLETENESS_OBLIGATION_CAP` obligations per guard.
    """
    if _completion_obligation_count(automaton) > COMPLETENESS_OBLIGATION_CAP:
        yield info(
            "RA139",
            "completeness not checked: the vocabulary implies more than "
            "%d obligations per guard (Example 2's exponential blow-up)"
            % COMPLETENESS_OBLIGATION_CAP,
        )
        return
    variables, constants = automaton.guard_vocabulary()
    relations = automaton.signature.relations
    for guard in sorted(
        {t.guard for t in automaton.transitions}, key=lambda g: g.canonical_literals
    ):
        if not guard.is_complete(relations, variables, constants):
            if guard.is_complete({}, variables, constants):
                yield info(
                    "RA131",
                    "guard %s is equality-complete but leaves relational "
                    "atoms unsettled" % guard.pretty(),
                )
            else:
                yield info(
                    "RA130",
                    "guard %s is not complete; completion (Example 2) would "
                    "split it" % guard.pretty(),
                )


@analysis_pass("determinism", RegisterAutomaton, codes=("RA140", "RA141"))
def determinism_pass(automaton: RegisterAutomaton) -> Iterator[Diagnostic]:
    """Determinism relative to Example 3's state-driven form (informational).

    ``RA140`` flags states firing several distinct guards (the automaton is
    not state-driven there; ``state_driven()`` outputs are certified
    clean); ``RA141`` flags genuine nondeterminism -- one (state, guard)
    pair branching to several targets, which ``state_driven()`` preserves.
    """
    for state in sorted(automaton.states, key=repr):
        guards = automaton.guards_from(state)
        if len(guards) > 1:
            yield info(
                "RA140",
                "state fires %d distinct guards; the automaton is not "
                "state-driven here (Example 3)" % len(guards),
                "state %r" % (state,),
            )
        for guard in guards:
            targets = {
                t.target for t in automaton.transitions_with_guard(state, guard)
            }
            if len(targets) > 1:
                yield info(
                    "RA141",
                    "guard %s branches nondeterministically to %d targets"
                    % (guard.pretty(), len(targets)),
                    "state %r" % (state,),
                )
