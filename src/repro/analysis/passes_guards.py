"""Analysis passes over :class:`~repro.logic.types.SigmaType` guards.

* ``GT001`` -- the guard is unsatisfiable (congruence-closure conflict);
  only reachable for types built with ``check=False``.
* ``GT002`` -- a literal is entailed by the remaining literals (redundant;
  harmless semantically but inflates completion and agreement work).
* ``GT003`` -- a variable does not follow the ``x_i``/``y_i`` register
  convention, so the guard cannot appear on any automaton transition.
"""

from typing import Iterator

from repro.foundations.diagnostics import Diagnostic, error, info
from repro.logic.closure import EqualityClosure
from repro.logic.terms import register_index
from repro.logic.types import SigmaType

from repro.analysis.engine import analysis_pass


@analysis_pass("guard-sat", SigmaType, codes=("GT001",))
def guard_satisfiable_pass(guard: SigmaType) -> Iterator[Diagnostic]:
    if not EqualityClosure(guard.literals).is_consistent():
        yield error("GT001", "type %s is unsatisfiable" % guard.pretty())


@analysis_pass("guard-redundancy", SigmaType, codes=("GT002",))
def guard_redundancy_pass(guard: SigmaType) -> Iterator[Diagnostic]:
    literals = guard.canonical_literals
    if len(literals) < 2:
        return
    for literal in literals:
        rest = [other for other in literals if other != literal]
        if EqualityClosure(rest).entails_literal(literal):
            yield info(
                "GT002",
                "literal %r is entailed by the remaining literals (redundant)"
                % (literal,),
            )


@analysis_pass("guard-vocabulary", SigmaType, codes=("GT003",))
def guard_vocabulary_pass(guard: SigmaType) -> Iterator[Diagnostic]:
    for variable in sorted(guard.variables):
        if register_index(variable) is None:
            yield info(
                "GT003",
                "variable %r does not follow the x_i/y_i register convention"
                % (variable,),
            )
