"""Analysis passes over the finite-automaton substrate (:class:`Dfa`, :class:`Nfa`).

* ``FA001`` -- DFA states unreachable from the initial state;
* ``FA002`` -- DFA states from which no accepting state is reachable
  (computed via the cached :func:`repro.core.caching.dead_states` sweep,
  so analysis shares work with the streaming checker);
* ``FA003`` -- the DFA's language is empty;
* ``NF001`` -- NFA states unreachable from the initial states;
* ``NF002`` -- the NFA's language is empty.

All findings here are INFO severity: because :class:`Dfa` is total, any
non-universal language forces a dead sink state, and empty languages are
the *expected* outcome of the difference products that implement
equivalence checking -- so none of these conditions is evidence of a bug
by itself.  Callers vetting a hand-written constraint DFA should read the
full report (``analyze(dfa).render()`` shows INFO findings by default).
"""

from typing import Iterator, Set

from repro.automata.dfa import Dfa
from repro.automata.nfa import Nfa
from repro.core.caching import dead_states
from repro.foundations.diagnostics import Diagnostic, info

from repro.analysis.engine import analysis_pass


@analysis_pass("dfa-liveness", Dfa, codes=("FA001", "FA002", "FA003"))
def dfa_liveness_pass(dfa: Dfa) -> Iterator[Diagnostic]:
    reachable = dfa.reachable_states()
    dead = dead_states(dfa)
    for state in sorted(dfa.states - reachable, key=repr):
        yield info(
            "FA001", "state is unreachable from the initial state", "state %r" % (state,)
        )
    for state in sorted(reachable & dead, key=repr):
        yield info(
            "FA002",
            "state is dead: no accepting state is reachable from it",
            "state %r" % (state,),
        )
    if dfa.initial in dead:
        yield info("FA003", "the language is empty (the initial state is dead)")


def _nfa_reachable(nfa: Nfa) -> Set[int]:
    reachable = set(nfa.epsilon_closure(nfa.initial))
    symbols = nfa.symbols()
    frontier = list(reachable)
    while frontier:
        chunk, frontier = frontier, []
        for symbol in symbols:
            for state in nfa.step(chunk, symbol):
                if state not in reachable:
                    reachable.add(state)
                    frontier.append(state)
    return reachable


@analysis_pass("nfa-liveness", Nfa, codes=("NF001", "NF002"))
def nfa_liveness_pass(nfa: Nfa) -> Iterator[Diagnostic]:
    reachable = _nfa_reachable(nfa)
    for state in sorted(nfa.states() - reachable, key=repr):
        yield info(
            "NF001",
            "state is unreachable from the initial states",
            "state %r" % (state,),
        )
    if not reachable & nfa.accepting:
        yield info("NF002", "the language is empty (no accepting state reachable)")
