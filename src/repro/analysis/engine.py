"""The pass registry and the :func:`analyze` entry point.

An :class:`AnalysisPass` inspects one kind of object (register automata,
guards, workflow specs, finite automata) and yields
:class:`~repro.foundations.diagnostics.Diagnostic` findings.  Passes are
registered globally with :func:`register_pass` (or the
:func:`analysis_pass` decorator for function-style passes) and selected by
``isinstance`` against their ``target`` type, so adding support for a new
object kind is one module with a few registrations -- see
``docs/ANALYSIS.md``.

:func:`analyze` runs every applicable pass and folds the findings into a
:class:`~repro.foundations.diagnostics.Report`.  A pass that raises does
not abort the analysis: the failure becomes an ``XX000`` error diagnostic
(an analysis bug is still a finding, not a crash).
"""

from dataclasses import replace
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Type

from repro.foundations.diagnostics import Diagnostic, Report, Severity, error


class AnalysisPass:
    """One diagnostic check over one kind of object.

    Subclasses (or :func:`analysis_pass`-wrapped functions) provide:

    * ``name`` -- a short slug (``"guard-sat"``) used in pass selection,
    * ``target`` -- the type of object the pass understands,
    * ``codes`` -- the diagnostic codes the pass may emit (documentation
      and test surface; the engine does not enforce it),
    * :meth:`run` -- yields the findings for one object.
    """

    name: str = ""
    target: type = object
    codes: Tuple[str, ...] = ()

    def applicable(self, obj: object) -> bool:
        return isinstance(obj, self.target)

    def run(self, obj: object) -> Iterable[Diagnostic]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "AnalysisPass(%s -> %s)" % (self.name, self.target.__name__)


class _FunctionPass(AnalysisPass):
    def __init__(
        self,
        fn: Callable[[object], Iterable[Diagnostic]],
        name: str,
        target: type,
        codes: Tuple[str, ...],
    ):
        self.fn = fn
        self.name = name
        self.target = target
        self.codes = codes

    def run(self, obj: object) -> Iterable[Diagnostic]:
        return self.fn(obj)


_PASSES: List[AnalysisPass] = []


def register_pass(pass_: AnalysisPass) -> AnalysisPass:
    """Add *pass_* to the global registry (idempotent per pass name/target)."""
    for existing in _PASSES:
        if existing.name == pass_.name and existing.target is pass_.target:
            return existing
    _PASSES.append(pass_)
    return pass_


def analysis_pass(name: str, target: type, codes: Sequence[str] = ()):
    """Decorator registering a generator function as an analysis pass."""

    def decorate(fn: Callable[[object], Iterable[Diagnostic]]) -> AnalysisPass:
        return register_pass(_FunctionPass(fn, name, target, tuple(codes)))

    return decorate


def registered_passes(target: Optional[type] = None) -> Tuple[AnalysisPass, ...]:
    """All registered passes, optionally filtered by exact target type."""
    if target is None:
        return tuple(_PASSES)
    return tuple(p for p in _PASSES if p.target is target)


def passes_for(obj: object) -> Tuple[AnalysisPass, ...]:
    """The registered passes applicable to *obj*, in registration order."""
    return tuple(p for p in _PASSES if p.applicable(obj))


def analyze(
    obj: object,
    passes: Optional[Iterable[AnalysisPass]] = None,
    subject: str = "",
    only: Optional[Iterable[str]] = None,
) -> Report:
    """Run every applicable pass over *obj* and collect a :class:`Report`.

    Parameters
    ----------
    passes:
        Explicit passes to run (defaults to the registered passes
        applicable to *obj*).
    subject:
        Report label (defaults to the object's ``repr``).
    only:
        When given, keep only the passes whose ``name`` is listed.
    """
    selected = tuple(passes) if passes is not None else passes_for(obj)
    if only is not None:
        wanted = set(only)
        selected = tuple(p for p in selected if p.name in wanted)
    report = Report(subject or repr(obj))
    for pass_ in selected:
        try:
            for diagnostic in pass_.run(obj):
                if not diagnostic.source:
                    diagnostic = replace(diagnostic, source=pass_.name)
                report.add(diagnostic)
        except Exception as failure:  # an analysis bug is a finding too
            report.add(
                replace(
                    error(
                        "XX000",
                        "pass %r crashed: %s: %s"
                        % (pass_.name, type(failure).__name__, failure),
                    ),
                    source=pass_.name,
                )
            )
    return report


def is_clean(obj: object, min_severity: Severity = Severity.ERROR) -> bool:
    """Whether analysis of *obj* yields nothing at or above *min_severity*."""
    report = analyze(obj)
    return not any(d.severity >= min_severity for d in report)
