"""The lint-rule registry: pluggable rules in the ``AnalysisPass`` style.

Rules register globally (module import time) exactly like the analysis
passes in :mod:`repro.analysis.engine`; the engine iterates
:func:`all_rules` in deterministic code order, and the documentation
table in ``docs/ANALYSIS.md`` is generated from the same registry, so a
rule cannot exist without appearing in the docs (lint rule ``KNB003``
checks the reverse direction).

Three scopes, distinguished by what the ``run`` callable receives:

* ``"module"`` -- ``run(module, program, context)``: one file at a
  time, with the whole program available for context.  The eight legacy
  rules and ``KNB001`` live here.
* ``"program"`` -- ``run(program, context)``: cross-file rules whose
  findings still land *in* the linted files (``PAR00x``, ``RSL00x``).
* ``"artifact"`` -- ``run(program, context)``: rules about artifacts
  *outside* the linted tree (CI workflow, generated docs tables --
  ``KNB002``/``KNB003``).  Skipped by single-source ``iter_findings``.

Every ``run`` yields :class:`~repro.analysis.lint.findings.Finding`
tuples; the engine owns ordering and deduplication.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

__all__ = ["LintRule", "register_rule", "lint_rule", "all_rules", "get_rule"]

_SCOPES = ("module", "program", "artifact")


@dataclass(frozen=True)
class LintRule:
    """One registered lint rule.

    ``summary`` is the one-line meaning used in the generated rule table
    (``docs/ANALYSIS.md``); keep it self-contained -- it is the only
    description most readers see.
    """

    code: str
    name: str
    scope: str
    summary: str
    run: Callable = field(repr=False, compare=False)

    def __post_init__(self):
        if self.scope not in _SCOPES:
            raise ValueError("unknown lint rule scope %r" % self.scope)


_REGISTRY: Dict[str, LintRule] = {}  # mode-ok: rule declarations, no interned values


def register_rule(rule: LintRule) -> LintRule:
    """Register *rule*; duplicate codes are a programming error."""
    existing = _REGISTRY.get(rule.code)
    if existing is not None:
        if existing is rule or existing == rule:
            return existing
        raise ValueError("lint rule %r is already registered" % rule.code)
    _REGISTRY[rule.code] = rule
    return rule


def lint_rule(code: str, name: str, scope: str, summary: str):
    """Decorator form: ``@lint_rule("PAR001", "worker-global-write", ...)``."""

    def decorate(fn: Callable) -> Callable:
        register_rule(LintRule(code, name, scope, summary, fn))
        return fn

    return decorate


def all_rules() -> Tuple[LintRule, ...]:
    """Every registered rule, sorted by code (deterministic run order)."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> LintRule:
    return _REGISTRY[code]
