"""The whole-program model behind the cross-file lint rules.

The legacy linter saw one file at a time; the PAR/RSL rule families need
to follow a callable from the process-pool call site in one module into
its definition in another.  This module supplies exactly the machinery
they share:

* :class:`ModuleInfo` -- one parsed file: AST, source lines, a
  best-effort dotted module name (derived from the path's ``repro``
  package root), the import maps, and indexes of top-level functions,
  classes and module-level containers.  Every file is parsed **once**;
  per-rule work caches hang off :attr:`ModuleInfo.cache`.
* :class:`Program` -- the modules in deterministic load order plus the
  cross-module indexes (dotted name -> module, method name -> defining
  methods) and the resolution helpers.

Resolution is deliberately *best effort and sound-for-linting*: a callee
we cannot resolve contributes no edge (rules stay quiet rather than
guess), and every traversal is bounded and deterministically ordered, so
a lint run is a pure function of the file contents.  The supported
chains cover the idioms the repository actually uses for process-pool
payloads:

* a plain ``Name`` -- a local ``def``, a ``from x import f`` alias, or a
  local variable resolved through its assignment in the enclosing
  function body;
* a constructed instance (``Tracker(x)`` as a payload) -- the class's
  ``__call__`` method;
* a factory call (``kernel.candidate_check()``) -- one level of
  return-value resolution inside the factory's body;
* an ``obj.method`` attribute -- through the import map for module
  attributes, ``self`` for the enclosing class, and a unique-method-name
  fallback across the program otherwise.
"""

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "Program",
    "module_name_for",
]

#: Constructor names whose module-level result counts as a mutable
#: container for the purity rules (PAR003) -- the same family the legacy
#: DEF001 rule treats as mutable.
CONTAINER_CALLS = (
    "list",
    "dict",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "WeakValueDictionary",
)

_CONTAINER_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def module_name_for(path: str) -> str:
    """Best-effort dotted module name for *path*.

    Anchored at the innermost ``repro`` directory (``src/repro/core/x.py``
    -> ``repro.core.x``) so the path-sensitive rules see the same module
    names from a checkout, an installed tree, or a materialised fixture
    tree.  Files outside a ``repro`` package keep their bare stem.
    """
    parts = Path(path).parts
    stem = Path(path).stem
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            dotted = list(parts[index:-1])
            if stem != "__init__":
                dotted.append(stem)
            return ".".join(dotted)
    return stem


def _is_container_expr(node: ast.expr) -> bool:
    if isinstance(node, _CONTAINER_LITERALS):
        return True
    if isinstance(node, ast.Call):
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id in CONTAINER_CALLS:
            return True
        if isinstance(callee, ast.Attribute) and callee.attr in CONTAINER_CALLS:
            return True
    return False


class FunctionInfo:
    """One function or method definition, tied back to its module."""

    __slots__ = ("module", "node", "qualname", "owner_class")

    def __init__(
        self,
        module: "ModuleInfo",
        node: ast.AST,
        qualname: str,
        owner_class: Optional["ClassInfo"] = None,
    ):
        self.module = module
        self.node = node
        self.qualname = qualname
        self.owner_class = owner_class

    @property
    def key(self) -> Tuple[str, str]:
        """Deterministic identity: ``(module path, qualified name)``."""
        return (self.module.path, self.qualname)

    def __repr__(self) -> str:
        return "FunctionInfo(%s:%s)" % (self.module.path, self.qualname)


class ClassInfo:
    """One top-level class definition and its directly-defined methods."""

    __slots__ = ("module", "node", "methods")

    def __init__(self, module: "ModuleInfo", node: ast.ClassDef):
        self.module = module
        self.node = node
        self.methods: Dict[str, FunctionInfo] = {}
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[statement.name] = FunctionInfo(
                    module,
                    statement,
                    "%s.%s" % (node.name, statement.name),
                    owner_class=self,
                )

    def __repr__(self) -> str:
        return "ClassInfo(%s:%s)" % (self.module.path, self.node.name)


class ModuleInfo:
    """One parsed source file plus the per-module lint indexes."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.name = module_name_for(path)
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        #: per-rule memo space (e.g. the fused legacy pass caches here)
        self.cache: Dict[str, object] = {}

        #: ``import x [as y]`` -- local name -> dotted module
        self.imports: Dict[str, str] = {}
        #: ``from m import a [as b]`` -- local name -> (module, attribute)
        self.import_from: Dict[str, Tuple[str, str]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module-level mutable containers -- name -> defining statement
        self.containers: Dict[str, ast.stmt] = {}
        #: names that appear inside a ``register_*(...)`` call anywhere in
        #: the module (the MC001 "has a lifecycle hook" convention)
        self.registered_names: set = set()
        #: names bound at module level to a ``ValueCache(...)`` -- those
        #: self-register a mode listener (repro.foundations.memo)
        self.value_caches: set = set()

        self._index()

    # -- indexing ------------------------------------------------------- #

    def _index(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.level == 0:
                    for alias in node.names:
                        if alias.name != "*":
                            self.import_from[alias.asname or alias.name] = (
                                node.module,
                                alias.name,
                            )
            elif isinstance(node, ast.Call):
                callee = node.func
                name = None
                if isinstance(callee, ast.Name):
                    name = callee.id
                elif isinstance(callee, ast.Attribute):
                    name = callee.attr
                if name is not None and name.startswith("register_"):
                    for descendant in ast.walk(node):
                        if isinstance(descendant, ast.Name):
                            self.registered_names.add(descendant.id)

        for statement in self.tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[statement.name] = FunctionInfo(
                    self, statement, statement.name
                )
            elif isinstance(statement, ast.ClassDef):
                self.classes[statement.name] = ClassInfo(self, statement)
            elif isinstance(statement, (ast.Assign, ast.AnnAssign)):
                targets, value = self._assignment(statement)
                if value is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if _is_container_expr(value):
                        self.containers[target.id] = statement
                    if (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == "ValueCache"
                    ):
                        self.value_caches.add(target.id)

    @staticmethod
    def _assignment(statement):
        if isinstance(statement, ast.Assign):
            return statement.targets, statement.value
        if isinstance(statement, ast.AnnAssign) and statement.value is not None:
            return [statement.target], statement.value
        return (), None

    # -- convenience ---------------------------------------------------- #

    def line(self, lineno: int) -> str:
        if 0 < lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def iter_functions(self) -> Iterable[FunctionInfo]:
        """Every function and method, in deterministic source order."""
        for name in self.functions:
            yield self.functions[name]
        for cls in self.classes.values():
            for method in cls.methods.values():
                yield method

    def __repr__(self) -> str:
        return "ModuleInfo(%s as %s)" % (self.path, self.name)


#: Bound on every resolution recursion: payload chains in this codebase
#: are at most factory -> constructor -> ``__call__`` deep; the bound is
#: a cycle guard, not a tuning knob.
_RESOLVE_DEPTH = 6


class Program:
    """The parsed modules plus the cross-module resolution indexes."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: List[ModuleInfo] = list(modules)
        #: per-run memo space (e.g. the PAR closure is shared by 3 rules)
        self.cache: Dict[str, object] = {}
        self.by_name: Dict[str, ModuleInfo] = {}
        for module in self.modules:
            self.by_name.setdefault(module.name, module)
        #: method name -> every defining method (the unique-name fallback)
        self.method_index: Dict[str, List[FunctionInfo]] = {}
        for module in self.modules:
            for cls in module.classes.values():
                for method in cls.methods.values():
                    self.method_index.setdefault(method.node.name, []).append(method)

    # -- name-level resolution ------------------------------------------ #

    def module_ref(self, module: ModuleInfo, local_name: str) -> Optional[ModuleInfo]:
        """The module *local_name* denotes in *module*, if it is one.

        Covers both ``import x.y as local`` and the
        ``from pkg import submodule`` spelling (``from repro.foundations
        import knobs``), resolved against the program's own modules.
        """
        if local_name in module.imports:
            return self.by_name.get(module.imports[local_name])
        if local_name in module.import_from:
            source, attribute = module.import_from[local_name]
            return self.by_name.get("%s.%s" % (source, attribute))
        return None

    def resolve_name(self, module: ModuleInfo, name: str, _depth: int = 0):
        """What top-level object *name* denotes in *module*.

        Returns a :class:`FunctionInfo`, a :class:`ClassInfo`, or ``None``
        -- chasing ``from x import y`` chains through modules the program
        actually contains (an external import resolves to ``None``).
        """
        if _depth > _RESOLVE_DEPTH:
            return None
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        if name in module.import_from:
            source_name, attribute = module.import_from[name]
            source = self.by_name.get(source_name)
            if source is not None and source is not module:
                return self.resolve_name(source, attribute, _depth + 1)
        return None

    def resolve_callee(
        self,
        module: ModuleInfo,
        callee: ast.expr,
        owner_class: Optional[ClassInfo] = None,
    ) -> List[FunctionInfo]:
        """The functions a ``Call`` with func *callee* may enter.

        Call-graph semantics: calling a class resolves to its
        ``__init__`` (construction runs in the caller's process); an
        unresolvable callee resolves to nothing.
        """
        if isinstance(callee, ast.Name):
            target = self.resolve_name(module, callee.id)
            if isinstance(target, FunctionInfo):
                return [target]
            if isinstance(target, ClassInfo):
                init = target.methods.get("__init__")
                return [init] if init is not None else []
            return []
        if isinstance(callee, ast.Attribute):
            value = callee.value
            if isinstance(value, ast.Name):
                if value.id == "self" and owner_class is not None:
                    method = owner_class.methods.get(callee.attr)
                    if method is not None:
                        return [method]
                source = self.module_ref(module, value.id)
                if source is not None:
                    target = self.resolve_name(source, callee.attr)
                    if isinstance(target, FunctionInfo):
                        return [target]
                    if isinstance(target, ClassInfo):
                        init = target.methods.get("__init__")
                        return [init] if init is not None else []
                    return []
            candidates = self.method_index.get(callee.attr, ())
            if len(candidates) == 1:
                return [candidates[0]]
            return []
        return []

    # -- payload resolution (what runs in the *worker*) ----------------- #

    def resolve_payload(
        self,
        module: ModuleInfo,
        expr: ast.expr,
        scope_body: Sequence[ast.stmt] = (),
        _depth: int = 0,
    ) -> List[FunctionInfo]:
        """The function bodies a process-pool payload *expr* executes.

        Payload semantics differ from call-graph semantics in one spot:
        a constructed instance (``Tracker(x)``) ships to the worker and
        runs its ``__call__`` there, while ``__init__`` already ran in
        the parent.
        """
        if _depth > _RESOLVE_DEPTH:
            return []
        if isinstance(expr, ast.Name):
            assigned = self._local_assignments(expr.id, scope_body)
            if assigned:
                resolved: List[FunctionInfo] = []
                for value in assigned:
                    resolved.extend(
                        self.resolve_payload(module, value, scope_body, _depth + 1)
                    )
                return _dedupe(resolved)
            target = self.resolve_name(module, expr.id)
            if isinstance(target, FunctionInfo):
                return [target]
            if isinstance(target, ClassInfo):
                call = target.methods.get("__call__")
                return [call] if call is not None else []
            return []
        if isinstance(expr, ast.Call):
            produced: List[FunctionInfo] = []
            callee = expr.func
            if isinstance(callee, ast.Name):
                target = self.resolve_name(module, callee.id)
                if isinstance(target, ClassInfo):
                    call = target.methods.get("__call__")
                    return [call] if call is not None else []
                if isinstance(target, FunctionInfo):
                    produced.extend(
                        self._returned_payloads(target, _depth + 1)
                    )
                return _dedupe(produced)
            factories = self.resolve_callee(module, callee)
            if not factories and isinstance(callee, ast.Attribute):
                candidates = self.method_index.get(callee.attr, ())
                if len(candidates) == 1:
                    factories = [candidates[0]]
            for factory in factories:
                produced.extend(self._returned_payloads(factory, _depth + 1))
            return _dedupe(produced)
        if isinstance(expr, ast.Attribute):
            value = expr.value
            if isinstance(value, ast.Name):
                source = self.module_ref(module, value.id)
                if source is not None:
                    target = self.resolve_name(source, expr.attr)
                    if isinstance(target, FunctionInfo):
                        return [target]
            candidates = self.method_index.get(expr.attr, ())
            if len(candidates) == 1:
                return [candidates[0]]
            return []
        return []

    def _returned_payloads(
        self, factory: FunctionInfo, depth: int
    ) -> List[FunctionInfo]:
        """One level of return-value resolution inside a factory body."""
        produced: List[FunctionInfo] = []
        for node in ast.walk(factory.node):
            if isinstance(node, ast.Return) and node.value is not None:
                produced.extend(
                    self.resolve_payload(
                        factory.module,
                        node.value,
                        factory.node.body,
                        depth,
                    )
                )
        return produced

    @staticmethod
    def _local_assignments(
        name: str, scope_body: Sequence[ast.stmt]
    ) -> List[ast.expr]:
        """Every value assigned to local *name* inside the scope body."""
        values: List[ast.expr] = []
        for statement in scope_body:
            for node in ast.walk(statement):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            values.append(node.value)
        return values

    # -- call-graph closure --------------------------------------------- #

    def reachable_functions(
        self, roots: Sequence[FunctionInfo], max_depth: int = 16
    ) -> List[FunctionInfo]:
        """Functions transitively callable from *roots* (roots included).

        Bounded, deterministic breadth-first closure: edges come from
        :meth:`resolve_callee` over every ``Call`` in a body (nested
        defs included -- an over-approximation is the sound direction
        for a purity check), siblings are visited in source order, and
        an unresolvable callee simply contributes no edge.
        """
        seen: Dict[Tuple[str, str], FunctionInfo] = {}
        frontier: List[FunctionInfo] = []
        for root in roots:
            if root.key not in seen:
                seen[root.key] = root
                frontier.append(root)
        depth = 0
        while frontier and depth < max_depth:
            next_frontier: List[FunctionInfo] = []
            for fn in frontier:
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    for callee in self.resolve_callee(
                        fn.module, node.func, fn.owner_class
                    ):
                        if callee.key not in seen:
                            seen[callee.key] = callee
                            next_frontier.append(callee)
            frontier = next_frontier
            depth += 1
        return list(seen.values())


def _dedupe(functions: List[FunctionInfo]) -> List[FunctionInfo]:
    seen = set()
    out: List[FunctionInfo] = []
    for fn in functions:
        if fn.key not in seen:
            seen.add(fn.key)
            out.append(fn)
    return out
