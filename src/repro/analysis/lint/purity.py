"""``PAR00x``: the worker-purity race detector.

The process-pool contract (``docs/PERFORMANCE.md``) is that a parallel
run is **byte-identical** to the serial run: work items execute in
separate processes, so any state a payload writes -- module globals,
``os.environ``, module-level caches -- exists only in that worker,
vanishes with the pool, and silently diverges from what the serial path
would have computed.  The rule family walks the call graph from every
process-pool entry point to the functions that actually run inside
workers and flags the hidden writes there:

* ``PAR001`` -- rebinding a module-level name via ``global``;
* ``PAR002`` -- writing ``os.environ`` (the sanctioned exception is
  :func:`repro.foundations.knobs.pin_for_worker`, whose single write
  carries a ``# worker-ok:`` annotation);
* ``PAR003`` -- mutating a module-level container (dict/list/set and
  friends).

Worker entry points: the first argument of every ``parallel_map`` /
``imap_chunked`` call (resolved through the import graph, local
assignments, constructed ``__call__`` payloads and one level of factory
returns -- see :mod:`repro.analysis.lint.program`), plus the pool
plumbing itself (``repro.core.parallel._call_chunk`` runs every chunk,
``_init_worker`` runs once per worker).

Exemptions -- all of them auditable in the diff:

* a ``# worker-ok: <why>`` comment on the write line (or, for
  ``PAR003``, on the container's defining line): the write is
  *per-process by design* (e.g. the fault-injection occurrence counters,
  whose per-worker numbering is the documented contract);
* a container with a ``register_*`` lifecycle hook or a ``ValueCache``
  (those self-register clearing listeners -- a pure memo whose entries
  are recomputable in any process is not a race);
* findings only fire in ``repro`` package modules -- test payloads and
  benchmark drivers manage their own state.

Like every cross-file rule, resolution is best effort: an unresolvable
payload contributes nothing (no guessing), so the detector is quiet
rather than noisy at the boundary.
"""

import ast
from typing import Iterable, List, Sequence, Tuple

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.legacy import _in_repro_tree
from repro.analysis.lint.program import FunctionInfo, ModuleInfo, Program
from repro.analysis.lint.registry import LintRule, register_rule

__all__ = ["worker_functions", "purity_findings"]

#: Call names that hand their first argument to the process pool.
POOL_ENTRY_NAMES = ("parallel_map", "imap_chunked")

#: Mutating method names on containers / ``os.environ``.
_MUTATORS = (
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "append",
    "extend",
    "add",
    "discard",
    "remove",
    "insert",
)

_PAR001_MESSAGE = (
    "worker-impure function %r rebinds module-level name %r via 'global': "
    "the write happens inside a process-pool worker, vanishes with the "
    "pool, and diverges from the serial path; make the payload pure or "
    "annotate the write '# worker-ok: <why>'"
)

_PAR002_MESSAGE = (
    "worker-impure function %r writes os.environ inside a process-pool "
    "worker: the write is invisible to the parent and to sibling workers, "
    "breaking the serial/parallel byte-identity contract; route sanctioned "
    "worker pins through repro.foundations.knobs.pin_for_worker or "
    "annotate the write '# worker-ok: <why>'"
)

_PAR003_MESSAGE = (
    "worker-impure function %r mutates module-level container %r inside a "
    "process-pool worker: per-process copies silently diverge from the "
    "serial run; use a registered cache (register_* lifecycle hook / "
    "ValueCache) or annotate the write '# worker-ok: <why>'"
)


def _is_environ_expr(module: ModuleInfo, node: ast.expr) -> bool:
    """Whether *node* denotes ``os.environ`` in *module*."""
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and module.imports.get(node.value.id) == "os"
    ):
        return True
    return isinstance(node, ast.Name) and module.import_from.get(node.id) == (
        "os",
        "environ",
    )


def _worker_exempt(module: ModuleInfo, lineno: int) -> bool:
    return "# worker-ok:" in module.line(lineno)


def _container_blessed(module: ModuleInfo, name: str) -> bool:
    if name in module.registered_names or name in module.value_caches:
        return True
    definition = module.containers.get(name)
    return definition is not None and _worker_exempt(module, definition.lineno)


# ---------------------------------------------------------------------- #
# entry-point discovery
# ---------------------------------------------------------------------- #


def _payload_sites(module: ModuleInfo) -> Iterable[Tuple[ast.Call, Sequence[ast.stmt]]]:
    """Every pool-entry call in *module* with its enclosing scope body."""
    scopes: List[Tuple[ast.AST, Sequence[ast.stmt]]] = []
    for fn in module.iter_functions():
        scopes.append((fn.node, fn.node.body))
    # Module-level statements outside any def/class (rare but legal).
    top_level = [
        statement
        for statement in module.tree.body
        if not isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    for statement in top_level:
        scopes.append((statement, top_level))
    for holder, body in scopes:
        for node in ast.walk(holder):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            callee = node.func
            name = None
            if isinstance(callee, ast.Name):
                name = callee.id
            elif isinstance(callee, ast.Attribute):
                name = callee.attr
            if name in POOL_ENTRY_NAMES:
                yield node, body


def worker_functions(program: Program) -> List[FunctionInfo]:
    """Every function the call graph proves can run inside a pool worker."""
    roots: List[FunctionInfo] = []
    seen = set()

    def add(fn: FunctionInfo) -> None:
        if fn.key not in seen:
            seen.add(fn.key)
            roots.append(fn)

    parallel = program.by_name.get("repro.core.parallel")
    if parallel is not None:
        for seeded in ("_call_chunk", "_init_worker"):
            fn = parallel.functions.get(seeded)
            if fn is not None:
                add(fn)
    for module in program.modules:
        for call, scope_body in _payload_sites(module):
            for fn in program.resolve_payload(module, call.args[0], scope_body):
                add(fn)
    return program.reachable_functions(roots)


# ---------------------------------------------------------------------- #
# the purity scan
# ---------------------------------------------------------------------- #


def _scan_function(fn: FunctionInfo) -> List[Finding]:
    module = fn.module
    findings: List[Finding] = []
    global_names: set = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Global):
            global_names.update(node.names)

    def report(node: ast.AST, code: str, message: str) -> None:
        if not _worker_exempt(module, node.lineno):
            findings.append(
                Finding(module.path, node.lineno, node.col_offset, code, message)
            )

    def check_store_target(node: ast.AST, target: ast.expr) -> None:
        if isinstance(target, ast.Name) and target.id in global_names:
            report(
                node, "PAR001", _PAR001_MESSAGE % (fn.qualname, target.id)
            )
        elif isinstance(target, ast.Subscript):
            value = target.value
            if _is_environ_expr(module, value):
                report(node, "PAR002", _PAR002_MESSAGE % fn.qualname)
            elif (
                isinstance(value, ast.Name)
                and value.id in module.containers
                and not _container_blessed(module, value.id)
            ):
                report(
                    node, "PAR003", _PAR003_MESSAGE % (fn.qualname, value.id)
                )

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                check_store_target(node, target)
        elif isinstance(node, ast.AugAssign):
            check_store_target(node, node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                check_store_target(node, target)
        elif isinstance(node, ast.Call):
            callee = node.func
            if not isinstance(callee, ast.Attribute):
                continue
            if callee.attr in ("putenv", "unsetenv") and (
                isinstance(callee.value, ast.Name)
                and module.imports.get(callee.value.id) == "os"
            ):
                report(node, "PAR002", _PAR002_MESSAGE % fn.qualname)
            elif callee.attr in _MUTATORS:
                value = callee.value
                if _is_environ_expr(module, value):
                    report(node, "PAR002", _PAR002_MESSAGE % fn.qualname)
                elif (
                    isinstance(value, ast.Name)
                    and value.id in module.containers
                    and not _container_blessed(module, value.id)
                ):
                    report(
                        node,
                        "PAR003",
                        _PAR003_MESSAGE % (fn.qualname, value.id),
                    )
    return findings


def purity_findings(program: Program) -> List[Finding]:
    """All ``PAR00x`` findings for *program*, computed once per run.

    The closure and scan are shared by the three registered rules via
    the program's memo space -- each rule then filters by its code.
    """
    cached = program.cache.get("purity")
    if cached is not None:
        return cached
    findings: List[Finding] = []
    seen = set()
    workers = sorted(worker_functions(program), key=lambda fn: fn.key)
    for fn in workers:
        if not _in_repro_tree(fn.module.path):
            continue
        for finding in _scan_function(fn):
            if finding not in seen:
                seen.add(finding)
                findings.append(finding)
    program.cache["purity"] = findings
    return findings


def _run_code(code: str):
    def run(program, context):
        return [f for f in purity_findings(program) if f.code == code]

    return run


_PAR_RULES = (
    (
        "PAR001",
        "worker-global-rebind",
        "function reachable from a process-pool payload rebinds a "
        "module-level name via `global`: the write is worker-local and "
        "diverges from the serial path (exempt: `# worker-ok:`)",
    ),
    (
        "PAR002",
        "worker-environ-write",
        "worker-reachable function writes `os.environ`: invisible to the "
        "parent and sibling workers; sanctioned pins go through "
        "`knobs.pin_for_worker` (exempt: `# worker-ok:`)",
    ),
    (
        "PAR003",
        "worker-cache-mutation",
        "worker-reachable function mutates an unregistered module-level "
        "container: per-process copies diverge (exempt: a `register_*` "
        "hook, a `ValueCache`, or `# worker-ok:`)",
    ),
)

for _code, _name, _summary in _PAR_RULES:
    register_rule(LintRule(_code, _name, "program", _summary, _run_code(_code)))
