"""The lint finding record: one diagnosable fact about one source line.

Kept bit-compatible with the pre-refactor ``tools/lint_repro.py``: the
tuple shape, field order, ``format()`` text and ``_asdict()`` JSON shape
are all part of the CI contract (the lint job parses the JSON report,
and the golden tests pin it byte for byte).
"""

from typing import NamedTuple

__all__ = ["Finding"]


class Finding(NamedTuple):
    """One lint finding, formatted ``path:line:col: CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col, self.code, self.message)
