"""``python -m repro.analysis.lint`` -- the lint CLI entry point."""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
