"""The whole-program lint engine (``python -m repro.analysis.lint``).

The project-specific static-analysis subsystem behind the CI lint job:
an import-graph + call-graph layer over every linted file
(:mod:`.program`), a pluggable rule registry in the style of the
:class:`~repro.analysis.engine.AnalysisPass` registry (:mod:`.registry`),
the eight legacy single-file rules ported byte-for-byte (:mod:`.legacy`),
and three cross-file rule families:

* ``PAR00x`` -- worker-purity race detection over process-pool payloads
  (:mod:`.purity`);
* ``KNB00x`` -- ``REPRO_*`` knob-registry discipline, CI ablation
  coverage and generated-docs drift (:mod:`.knob_rules`);
* ``RSL00x`` -- deadline-poll discipline in long-running loops
  (:mod:`.deadlines`).

``tools/lint_repro.py`` remains as a thin shim re-exporting this public
surface, so existing invocations and imports keep working unchanged.
"""

from repro.analysis.lint.cli import main
from repro.analysis.lint.engine import (
    LintContext,
    iter_findings,
    lint_paths,
    load_program,
)
from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import LintRule, all_rules, get_rule, lint_rule

__all__ = [
    "Finding",
    "LintContext",
    "LintRule",
    "all_rules",
    "get_rule",
    "iter_findings",
    "lint_paths",
    "lint_rule",
    "load_program",
    "main",
]
