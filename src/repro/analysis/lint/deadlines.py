"""``RSL00x``: deadline-poll discipline in long-running modules.

The resilience layer (``docs/ROBUSTNESS.md``) is cooperative: a deadline
or cancellation only interrupts work at an explicit poll
(``current_deadline().check(site)``, ``Budget.charge()``,
``CancellationToken.check()``).  A loop that drives expensive work
without ever polling is therefore un-interruptible -- the budgeted run
keeps burning wall time after its deadline expired.  Two rules police
the modules where that matters:

* ``RSL001`` -- a loop in a long-running module whose body calls a
  known-expensive function but never polls, directly or through the
  (bounded, best-effort resolved) functions it calls.
* ``RSL002`` -- a loop that *sleeps* (``time.sleep``) without polling:
  a cancelled run keeps sleeping through its backoff.

Scope is deliberate, not global: only the modules named in
:data:`LONG_RUNNING_MODULES` (the enumeration/solver/streaming layers
that own documented checkpoint sites) are checked, and only loops whose
bodies provably drive :data:`EXPENSIVE_NAMES` work.  Everything
unresolvable stays quiet, and ``# deadline-ok: <why>`` on the loop line
is the audited escape hatch (e.g. a loop bounded by construction).
"""

import ast
from typing import Iterable, List, Sequence, Set, Tuple

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.program import FunctionInfo, ModuleInfo, Program
from repro.analysis.lint.registry import LintRule, register_rule

__all__ = ["deadline_findings", "LONG_RUNNING_MODULES", "EXPENSIVE_NAMES"]

#: Dotted module names whose loops must stay interruptible: the layers
#: with documented checkpoint sites (emptiness.lasso, types.completions,
#: theorem24.literal_pair/register_pair, buchi.*_round, streaming.feed_run,
#: monitor.ingest) plus the dataflow solver.
LONG_RUNNING_MODULES = frozenset(
    {
        "repro.core.emptiness",
        "repro.core.symkernel",
        "repro.core.theorem24",
        "repro.core.streaming",
        "repro.core.monitor",
        "repro.automata.buchi",
        "repro.logic.types",
        "repro.analysis.dataflow.framework",
    }
)

#: Callee names that mark a loop body as driving expensive work.  Name
#: based (an ``obj.method(...)`` spelling matches on the attribute), so
#: the rule keeps working across import styles; tuned to the repo's
#: actual enumeration/solver entry points.
EXPENSIVE_NAMES = frozenset(
    {
        "check_emptiness",
        "find_accepted_lasso",
        "iter_accepted_lassos",
        "iter_lassos",
        "feed_run",
        "feed",
        "_apply_session",
        "complete_x_types",
        "completions",
        "normalise_automaton",
        "literal_pairs",
        "register_pairs",
        "candidate_check",
    }
)

#: A call to one of these names *is* a poll.
_POLL_NAMES = ("current_deadline", "deadline_scope", "budget_scope")

#: ``<obj>.check(...)`` / ``<obj>.charge(...)`` is a poll regardless of
#: the receiver -- Deadline, Budget scopes and CancellationToken all
#: spell it that way.
_POLL_ATTRS = ("check", "charge")

#: How far poll detection follows resolved callees out of the loop body.
_POLL_DEPTH = 3

_RSL001_MESSAGE = (
    "long-running loop drives expensive work (%s) but never polls a "
    "deadline: budgets and cancellation cannot interrupt it; call "
    "current_deadline().check(<site>) / Budget.charge() in the loop body "
    "or annotate the loop '# deadline-ok: <why>'"
)

_RSL002_MESSAGE = (
    "loop sleeps (time.sleep) without polling a deadline: a cancelled or "
    "deadline-expired run keeps sleeping through its backoff; poll "
    "current_deadline() / .check(...) before sleeping or annotate the "
    "loop '# deadline-ok: <why>'"
)


def _callee_name(node: ast.Call):
    callee = node.func
    if isinstance(callee, ast.Name):
        return callee.id
    if isinstance(callee, ast.Attribute):
        return callee.attr
    return None


def _body_calls(body: Sequence[ast.stmt]) -> Iterable[ast.Call]:
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Call):
                yield node


def _is_poll_call(node: ast.Call) -> bool:
    callee = node.func
    if isinstance(callee, ast.Name) and callee.id in _POLL_NAMES:
        return True
    if isinstance(callee, ast.Attribute):
        if callee.attr in _POLL_NAMES:
            return True
        if callee.attr in _POLL_ATTRS:
            return True
    return False


def _polls(
    program: Program,
    module: ModuleInfo,
    body: Sequence[ast.stmt],
    owner_class,
    depth: int,
    visited: Set[Tuple[str, str]],
) -> bool:
    """Whether the body (or a resolved callee, transitively) polls."""
    for call in _body_calls(body):
        if _is_poll_call(call):
            return True
    if depth <= 0:
        return False
    for call in _body_calls(body):
        for callee in program.resolve_callee(module, call.func, owner_class):
            if callee.key in visited:
                continue
            visited.add(callee.key)
            if _polls(
                program,
                callee.module,
                callee.node.body,
                callee.owner_class,
                depth - 1,
                visited,
            ):
                return True
    return False


def _is_sleep_call(module: ModuleInfo, node: ast.Call) -> bool:
    callee = node.func
    if (
        isinstance(callee, ast.Attribute)
        and callee.attr == "sleep"
        and isinstance(callee.value, ast.Name)
        and module.imports.get(callee.value.id) == "time"
    ):
        return True
    return isinstance(callee, ast.Name) and module.import_from.get(callee.id) == (
        "time",
        "sleep",
    )


def _loops(module: ModuleInfo):
    """Every ``for``/``while`` loop with its owning function (or ``None``).

    Dedup is positional (line, column) -- two distinct loops can never
    share a position, and object identity is banned as a key (ID001).
    """
    covered = set()
    for fn in module.iter_functions():
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                covered.add((node.lineno, node.col_offset))
                yield node, fn
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            if (node.lineno, node.col_offset) not in covered:
                yield node, None


def deadline_findings(program: Program) -> List[Finding]:
    """All ``RSL00x`` findings for *program*, computed once per run."""
    cached = program.cache.get("deadlines")
    if cached is not None:
        return cached
    findings: List[Finding] = []
    for module in program.modules:
        if module.name not in LONG_RUNNING_MODULES:
            continue
        for loop, fn in _loops(module):
            if "# deadline-ok:" in module.line(loop.lineno):
                continue
            body = list(loop.body) + list(loop.orelse)
            owner = fn.owner_class if fn is not None else None
            expensive = sorted(
                {
                    name
                    for name in (
                        _callee_name(call) for call in _body_calls(body)
                    )
                    if name in EXPENSIVE_NAMES
                }
            )
            sleeps = [
                call
                for call in _body_calls(body)
                if _is_sleep_call(module, call)
            ]
            if not expensive and not sleeps:
                continue
            if _polls(program, module, body, owner, _POLL_DEPTH, set()):
                continue
            if expensive:
                findings.append(
                    Finding(
                        module.path,
                        loop.lineno,
                        loop.col_offset,
                        "RSL001",
                        _RSL001_MESSAGE % ", ".join(expensive),
                    )
                )
            for call in sleeps:
                findings.append(
                    Finding(
                        module.path,
                        call.lineno,
                        call.col_offset,
                        "RSL002",
                        _RSL002_MESSAGE,
                    )
                )
    program.cache["deadlines"] = findings
    return findings


def _run_code(code: str):
    def run(program, context):
        return [f for f in deadline_findings(program) if f.code == code]

    return run


_RSL_RULES = (
    (
        "RSL001",
        "unpolled-expensive-loop",
        "loop in a long-running module drives expensive work without a "
        "deadline poll: deadlines/budgets/cancellation cannot interrupt it "
        "(exempt: `# deadline-ok:`)",
    ),
    (
        "RSL002",
        "unpolled-sleep-loop",
        "loop sleeps via `time.sleep` without polling a deadline: a "
        "cancelled run keeps sleeping through its backoff (exempt: "
        "`# deadline-ok:`)",
    ),
)

for _code, _name, _summary in _RSL_RULES:
    register_rule(LintRule(_code, _name, "program", _summary, _run_code(_code)))
