"""The lint CLI: the ``tools/lint_repro.py`` surface plus docs emission.

Flags, defaults, output formats and exit codes are byte-compatible with
the pre-refactor tool (the CI lint job and the golden tests depend on
it); the only additions are ``--emit-docs`` / ``--check`` for the
generated documentation tables.

Usage::

    python -m repro.analysis.lint [options] [path ...]   # default: src/
    python -m repro.analysis.lint --emit-docs [--check]

``--format json`` emits ``{"findings": [...], "count": N}`` for the CI
job; ``--select`` / ``--ignore`` take comma-separated code lists.  Exit
status 1 when any finding is reported (or, under ``--emit-docs
--check``, when a generated table is stale).
"""

import sys
from typing import Optional, Sequence

from repro.analysis.lint import docs
from repro.analysis.lint.engine import LintContext, lint_paths

__all__ = ["main"]


def _parse_codes(option: str) -> frozenset:
    return frozenset(
        code.strip().upper() for code in option.split(",") if code.strip()
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="lint_repro",
        description="AST-based repo linter (project-specific rules).",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories (default: src)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="output format; 'json' emits {findings, count} for CI parsing",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated codes to report exclusively (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default="",
        help="comma-separated codes to suppress",
    )
    parser.add_argument(
        "--emit-docs",
        action="store_true",
        dest="emit_docs",
        help="regenerate the rule/knob tables in docs/ instead of linting",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="with --emit-docs: report drift without rewriting the files",
    )
    options = parser.parse_args(sys.argv[1:] if argv is None else list(argv))
    if options.emit_docs:
        stale = 0
        for path, status in docs.sync_docs(LintContext(), check=options.check):
            print("%s: %s" % (path, status))
            if status in ("stale", "missing"):
                stale += 1
        return 1 if stale else 0
    findings = lint_paths(options.paths or ["src"])
    selected = _parse_codes(options.select)
    ignored = _parse_codes(options.ignore)
    if selected:
        findings = [f for f in findings if f.code in selected]
    if ignored:
        findings = [f for f in findings if f.code not in ignored]
    if options.output_format == "json":
        print(
            json.dumps(
                {
                    "findings": [f._asdict() for f in findings],
                    "count": len(findings),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print("%d finding(s)." % len(findings), file=sys.stderr)
    return 1 if findings else 0
