"""The eight pre-refactor lint rules, as one fused module pass.

Ported **verbatim** from the monolithic ``tools/lint_repro.py`` (which
is now a thin shim over this package): visitor structure, scope
tracking, messages and finding positions are unchanged, and the golden
test ``tests/goldens/lint_legacy_fixture.json`` -- generated with the
pre-refactor tool -- pins the output byte for byte.

Like flake8's checkers, the eight rules share a single AST walk: the
:class:`_Linter` visitor and the :class:`_CacheScan` second pass run
once per module (cached on :attr:`ModuleInfo.cache`), and each
registered rule filters the fused result by its code.  Registering them
individually keeps the ``--select`` / ``--ignore`` surface and the
generated docs table uniform across old and new rules.

The rules (full rationale in the generated table in ``docs/ANALYSIS.md``):

* ``ID001`` -- call to the builtin ``id()``: object ids are recycled
  after garbage collection, so an id is never a sound cache/dedup key.
* ``DEF001`` -- mutable default argument, evaluated once and shared.
* ``EXC001`` -- bare ``except:`` swallows KeyboardInterrupt/SystemExit.
* ``HC001`` -- direct ``Literal(...)``/``SigmaType(...)`` construction
  in ``repro/core`` hot paths.
* ``ENV001`` -- environment read at import time; knobs are call-time.
* ``TIME001`` -- ``time.time()`` for durations; use the monotonic clock.
* ``MC001`` -- module-level dict cache that ignores the interning mode
  (exempt: ``# mode-ok:`` or a ``register_*`` lifecycle hook).
* ``ORD001`` -- iteration over an unordered container in a ``repro``
  package (exempt: ``# order-ok:``).
"""

import ast
from pathlib import Path
from typing import List, Sequence

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.program import ModuleInfo
from repro.analysis.lint.registry import LintRule, register_rule

__all__ = ["fused_findings", "LEGACY_CODES"]

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = ("list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque")


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id in _MUTABLE_CALLS:
            return True
        if isinstance(callee, ast.Attribute) and callee.attr in _MUTABLE_CALLS:
            return True
    return False


_HOT_CONSTRUCTORS = ("Literal", "SigmaType")


def _in_hot_tree(path: str) -> bool:
    """Whether *path* lies under a ``repro/core`` directory."""
    parts = Path(path).parts
    return any(
        parts[i : i + 2] == ("repro", "core") for i in range(len(parts) - 1)
    )


def _in_repro_tree(path: str) -> bool:
    """Whether *path* lies under a ``repro`` package directory."""
    return "repro" in Path(path).parts[:-1]


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str, lines: Sequence[str] = ()):
        self.path = path
        self.lines = lines
        self.findings: List[Finding] = []
        self._id_shadowed = 0
        self._hot_tree = _in_hot_tree(path)
        self._repro_tree = _in_repro_tree(path)
        # ENV001 scope tracking: 0 = import time (module level, class body,
        # decorators and defaults of top-level functions), >0 = call time.
        self._function_depth = 0
        self._os_modules = {"os"}
        self._os_aliases: set = set()
        self._time_modules = {"time"}
        self._time_aliases: set = set()

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, node.lineno, node.col_offset, code, message)
        )

    # ID001 ------------------------------------------------------------- #

    def _shadows_id(self, node) -> bool:
        """Whether a function definition rebinds ``id`` as a parameter."""
        arguments = node.args
        names = [
            a.arg
            for a in (
                list(arguments.posonlyargs)
                + list(arguments.args)
                + list(arguments.kwonlyargs)
            )
        ]
        for extra in (arguments.vararg, arguments.kwarg):
            if extra is not None:
                names.append(extra.arg)
        return "id" in names

    def _visit_function(self, node) -> None:
        shadowed = self._shadows_id(node)
        self._check_defaults(node)
        self._id_shadowed += shadowed
        # Decorators, argument defaults and annotations evaluate in the
        # *enclosing* scope (import time for a top-level def); only the
        # body is deferred to call time -- ENV001 depends on the split.
        for decorator in node.decorator_list:
            self.visit(decorator)
        self.visit(node.args)
        if node.returns is not None:
            self.visit(node.returns)
        self._function_depth += 1
        for statement in node.body:
            self.visit(statement)
        self._function_depth -= 1
        self._id_shadowed -= shadowed

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        shadowed = self._shadows_id(node)
        self._id_shadowed += shadowed
        self.visit(node.args)
        self._function_depth += 1
        self.visit(node.body)
        self._function_depth -= 1
        self._id_shadowed -= shadowed

    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        if (
            isinstance(callee, ast.Name)
            and callee.id == "id"
            and not self._id_shadowed
        ):
            self._report(
                node,
                "ID001",
                "call to builtin id(): object ids are recycled after garbage "
                "collection and must never serve as cache/dedup keys",
            )
        self._check_hot_construction(node)
        self._check_wall_clock(node)
        self.generic_visit(node)

    # TIME001 ------------------------------------------------------------ #

    _TIME001_MESSAGE = (
        "time.time() is the steppable wall clock: durations and deadlines "
        "must use time.monotonic() (see repro.foundations.resilience."
        "Deadline) or time.perf_counter() for benchmark timing"
    )

    def _check_wall_clock(self, node: ast.Call) -> None:
        callee = node.func
        if (
            isinstance(callee, ast.Attribute)
            and callee.attr == "time"
            and isinstance(callee.value, ast.Name)
            and callee.value.id in self._time_modules
        ):
            self._report(node, "TIME001", self._TIME001_MESSAGE)
        elif isinstance(callee, ast.Name) and callee.id in self._time_aliases:
            self._report(node, "TIME001", self._TIME001_MESSAGE)

    # HC001 ------------------------------------------------------------- #

    def _check_hot_construction(self, node: ast.Call) -> None:
        if not self._hot_tree:
            return
        callee = node.func
        name = None
        if isinstance(callee, ast.Name):
            name = callee.id
        elif isinstance(callee, ast.Attribute):
            name = callee.attr
        if name in _HOT_CONSTRUCTORS:
            self._report(
                node,
                "HC001",
                "direct %s(...) construction in a repro/core hot path: "
                "derive guards through the cached helpers (x_part, rename, "
                "with_literals, eq/neq/rel) or hoist construction out of "
                "the loop" % name,
            )

    # ORD001 ------------------------------------------------------------ #

    _ORD001_MESSAGE = (
        "iteration over an unordered %s: hash order leaks into diagnostic "
        "ordering, report rendering or worklist seeding and varies across "
        "runs and interning modes; wrap the iterable in sorted(...) or "
        "annotate '# order-ok: <why>' when the order provably cannot "
        "reach any output"
    )

    def _unordered_kind(self, node: ast.expr):
        """What unordered container *node* is, or ``None``."""
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id in ("set", "frozenset"):
                return "%s(...) call" % callee.id
            if isinstance(callee, ast.Attribute) and callee.attr == "keys":
                return ".keys() view"
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra (union/intersection/difference) over an
            # unordered operand is itself unordered
            return self._unordered_kind(node.left) or self._unordered_kind(
                node.right
            )
        return None

    def _order_exempt(self, node: ast.expr) -> bool:
        line = ""
        if 0 < node.lineno <= len(self.lines):
            line = self.lines[node.lineno - 1]
        return "# order-ok:" in line

    def _check_unordered_iter(self, iterable: ast.expr) -> None:
        if not self._repro_tree:
            return
        kind = self._unordered_kind(iterable)
        if kind is not None and not self._order_exempt(iterable):
            self._report(iterable, "ORD001", self._ORD001_MESSAGE % kind)

    def visit_For(self, node: ast.For) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_unordered_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_unordered_iter(generator.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # DEF001 ------------------------------------------------------------ #

    def _check_defaults(self, node) -> None:
        arguments = node.args
        for default in list(arguments.defaults) + [
            d for d in arguments.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                self._report(
                    default,
                    "DEF001",
                    "mutable default argument: evaluated once and shared "
                    "across calls; default to None and build inside",
                )

    # ENV001 ------------------------------------------------------------ #

    _ENV001_MESSAGE = (
        "environment read at import time: knobs like REPRO_WORKERS / "
        "REPRO_INTERN / REPRO_PRUNE must be read at call time so tests "
        "and A/B runs can flip them per call (see "
        "repro.core.parallel.worker_count)"
    )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "os":
                self._os_modules.add(alias.asname or alias.name)
            if alias.name == "time":
                self._time_modules.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "os":
            for alias in node.names:
                if alias.name in ("environ", "getenv"):
                    self._os_aliases.add(alias.asname or alias.name)
        if node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    self._time_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self._function_depth == 0
            and node.attr in ("environ", "getenv")
            and isinstance(node.value, ast.Name)
            and node.value.id in self._os_modules
        ):
            self._report(node, "ENV001", self._ENV001_MESSAGE)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if (
            self._function_depth == 0
            and isinstance(node.ctx, ast.Load)
            and node.id in self._os_aliases
        ):
            self._report(node, "ENV001", self._ENV001_MESSAGE)
        self.generic_visit(node)

    # EXC001 ------------------------------------------------------------ #

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node,
                "EXC001",
                "bare except: swallows KeyboardInterrupt/SystemExit; catch a "
                "concrete exception class",
            )
        self.generic_visit(node)


# MC001 --------------------------------------------------------------- #

_MC001_MESSAGE = (
    "module-level dict cache %r is mutated inside functions but ignores "
    "the interning mode: interned values cached across a REPRO_INTERN "
    "flip break identity-is-equality; clear it via "
    "register_mode_listener(...) or mark the assignment "
    "'# mode-ok: <why>' if it holds no interned values"
)


def _is_dict_expr(node: ast.expr) -> bool:
    """A ``{}`` / ``{...: ...}`` literal or a bare ``dict(...)`` call."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "dict"
    )


class _CacheScan(ast.NodeVisitor):
    """Second pass for MC001: which candidate names are grown inside
    functions, and which appear inside a ``register_*`` call (i.e. have a
    registered lifecycle hook such as a mode listener)."""

    def __init__(self, names):
        self.names = names
        self.mutated: set = set()
        self.registered: set = set()
        self._depth = 0

    def _function(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _function
    visit_AsyncFunctionDef = _function
    visit_Lambda = _function

    def _note_subscript_store(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in self.names
        ):
            self.mutated.add(target.value.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._depth:
            for target in node.targets:
                self._note_subscript_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._depth:
            self._note_subscript_store(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        if (
            self._depth
            and isinstance(callee, ast.Attribute)
            and callee.attr in ("setdefault", "update")
            and isinstance(callee.value, ast.Name)
            and callee.value.id in self.names
        ):
            self.mutated.add(callee.value.id)
        name = None
        if isinstance(callee, ast.Name):
            name = callee.id
        elif isinstance(callee, ast.Attribute):
            name = callee.attr
        if name is not None and name.startswith("register_"):
            for descendant in ast.walk(node):
                if isinstance(descendant, ast.Name) and descendant.id in self.names:
                    self.registered.add(descendant.id)
        self.generic_visit(node)


def _module_cache_findings(
    tree: ast.Module, lines: Sequence[str], path: str
) -> List[Finding]:
    if not _in_repro_tree(path):
        return []
    candidates = {}
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        else:
            continue
        if not _is_dict_expr(value):
            continue
        line = lines[statement.lineno - 1] if statement.lineno <= len(lines) else ""
        if "# mode-ok:" in line:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                candidates[target.id] = statement
    if not candidates:
        return []
    scan = _CacheScan(frozenset(candidates))
    scan.visit(tree)
    return [
        Finding(
            path,
            candidates[name].lineno,
            candidates[name].col_offset,
            "MC001",
            _MC001_MESSAGE % name,
        )
        for name in sorted(scan.mutated - scan.registered)
    ]


# ---------------------------------------------------------------------- #
# the fused pass + rule registrations
# ---------------------------------------------------------------------- #


def fused_findings(module: ModuleInfo) -> List[Finding]:
    """All eight legacy rules' findings for *module*, computed once."""
    cached = module.cache.get("legacy")
    if cached is None:
        linter = _Linter(module.path, module.lines)
        linter.visit(module.tree)
        findings = list(linter.findings)
        findings.extend(
            _module_cache_findings(module.tree, module.lines, module.path)
        )
        cached = module.cache["legacy"] = findings
    return cached


def _legacy_runner(code: str):
    def run(module, program, context):
        return [f for f in fused_findings(module) if f.code == code]

    return run


_LEGACY_RULES = (
    (
        "ID001",
        "id-as-key",
        "call to builtin `id()`: object ids are recycled after garbage "
        "collection and must never serve as cache/dedup keys",
    ),
    (
        "DEF001",
        "mutable-default",
        "mutable default argument: evaluated once at definition time and "
        "shared across calls",
    ),
    (
        "EXC001",
        "bare-except",
        "bare `except:` swallows `KeyboardInterrupt`/`SystemExit`; catch a "
        "concrete exception class",
    ),
    (
        "ENV001",
        "import-time-env-read",
        "`os.environ`/`os.getenv` read at import time: behaviour knobs must "
        "be read at call time so tests and A/B runs can flip them per call",
    ),
    (
        "HC001",
        "hot-path-construction",
        "direct `Literal(...)`/`SigmaType(...)` construction under "
        "`repro/core`: derive guards through the cached helpers or hoist "
        "construction out of the loop",
    ),
    (
        "TIME001",
        "wall-clock",
        "`time.time()` is the steppable wall clock: durations and deadlines "
        "use `time.monotonic()`, benchmark timing uses `time.perf_counter()`",
    ),
    (
        "MC001",
        "mode-blind-cache",
        "module-level dict cache mutated inside functions but blind to the "
        "interning mode (exempt: `# mode-ok:` or a `register_*` lifecycle "
        "hook)",
    ),
    (
        "ORD001",
        "unordered-iteration",
        "iteration over an unordered container in a `repro` package: hash "
        "order varies across runs and interning modes (exempt: "
        "`# order-ok:`)",
    ),
)

LEGACY_CODES = tuple(code for code, _name, _summary in _LEGACY_RULES)

for _code, _name, _summary in _LEGACY_RULES:
    register_rule(LintRule(_code, _name, "module", _summary, _legacy_runner(_code)))
