"""Generated documentation tables: rules and knobs.

Two markdown tables are owned by the registries, not by hand:

* the **lint rule table** in ``docs/ANALYSIS.md``, generated from
  :func:`repro.analysis.lint.registry.all_rules`;
* the **environment knob table** in ``docs/ROBUSTNESS.md``, generated
  from :func:`repro.foundations.knobs.all_knobs`.

Each lives between HTML-comment markers (``<!-- lint-rule-table:begin
-->`` / ``...end -->``) so the surrounding prose stays hand-written.
``python -m repro.analysis.lint --emit-docs`` rewrites the blocks in
place; ``--emit-docs --check`` (the CI drift gate) and lint rule
``KNB003`` report when a table is stale without touching the files.
"""

from pathlib import Path
from typing import Callable, List, Tuple

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.registry import all_rules

__all__ = [
    "rule_table",
    "knob_table",
    "sync_docs",
    "drift_findings",
    "RULE_TABLE_BEGIN",
    "RULE_TABLE_END",
    "KNOB_TABLE_BEGIN",
    "KNOB_TABLE_END",
]

RULE_TABLE_BEGIN = "<!-- lint-rule-table:begin (generated; run `python -m repro.analysis.lint --emit-docs`) -->"
RULE_TABLE_END = "<!-- lint-rule-table:end -->"
KNOB_TABLE_BEGIN = "<!-- knob-table:begin (generated; run `python -m repro.analysis.lint --emit-docs`) -->"
KNOB_TABLE_END = "<!-- knob-table:end -->"


def rule_table() -> str:
    """The lint-rule table, one row per registered rule, sorted by code."""
    rows = [
        "| Code | Scope | Meaning |",
        "| --- | --- | --- |",
    ]
    for rule in all_rules():
        rows.append("| `%s` | %s | %s |" % (rule.code, rule.scope, rule.summary))
    return "\n".join(rows)


def knob_table() -> str:
    """The environment-knob table, generated from the knob registry."""
    from repro.foundations import knobs

    rows = [
        "| Variable | Default | Ablation | Meaning |",
        "| --- | --- | --- | --- |",
    ]
    for knob in knobs.all_knobs():
        if knob.ablation == "ci":
            ablation = "CI leg"
        else:
            ablation = "none -- %s" % knob.ablation_reason
        rows.append(
            "| `%s` | %s | %s | %s |" % (knob.name, knob.default, ablation, knob.doc)
        )
    return "\n".join(rows)


#: The generated blocks: (doc path relative to the context root,
#: begin marker, end marker, generator).
def _targets(context) -> List[Tuple[Path, str, str, Callable[[], str]]]:
    return [
        (context.analysis_doc, RULE_TABLE_BEGIN, RULE_TABLE_END, rule_table),
        (context.robustness_doc, KNOB_TABLE_BEGIN, KNOB_TABLE_END, knob_table),
    ]


def _split_block(text: str, begin: str, end: str):
    """``(head, block, tail)`` around the marked block, or ``None``."""
    start = text.find(begin)
    if start < 0:
        return None
    start += len(begin)
    stop = text.find(end, start)
    if stop < 0:
        return None
    return text[:start], text[start:stop], text[stop:]


def sync_docs(context, check: bool = False) -> List[Tuple[str, str]]:
    """Rewrite (or with *check*, diff) every generated block.

    Returns ``(path, status)`` pairs with status one of ``"ok"``
    (up to date), ``"updated"`` (rewritten -- never under *check*),
    ``"stale"`` (*check* found drift), ``"missing"`` (file or markers
    absent).
    """
    results: List[Tuple[str, str]] = []
    for path, begin, end, generate in _targets(context):
        if path is None or not path.exists():
            results.append((str(path), "missing"))
            continue
        text = path.read_text()
        parts = _split_block(text, begin, end)
        if parts is None:
            results.append((str(path), "missing"))
            continue
        head, block, tail = parts
        fresh = "\n%s\n" % generate()
        if block == fresh:
            results.append((str(path), "ok"))
        elif check:
            results.append((str(path), "stale"))
        else:
            path.write_text(head + fresh + tail)
            results.append((str(path), "updated"))
    return results


def drift_findings(context) -> List[Finding]:
    """The ``KNB003`` findings: stale or marker-less generated blocks."""
    findings: List[Finding] = []
    for path, begin, end, generate in _targets(context):
        if path is None or not path.exists():
            continue  # sliced checkout / fixture tree: nothing to check
        text = path.read_text()
        parts = _split_block(text, begin, end)
        if parts is None:
            findings.append(
                Finding(
                    str(path),
                    0,
                    0,
                    "KNB003",
                    "generated-table markers (%s) are missing: restore them "
                    "and run `python -m repro.analysis.lint --emit-docs`"
                    % begin.split(":")[0].lstrip("<!- "),
                )
            )
            continue
        _head, block, _tail = parts
        if block != "\n%s\n" % generate():
            findings.append(
                Finding(
                    str(path),
                    0,
                    0,
                    "KNB003",
                    "generated table is stale (differs from the registry): "
                    "run `python -m repro.analysis.lint --emit-docs`",
                )
            )
    return findings
