"""``KNB00x``: knob-registry discipline.

Every ``REPRO_*`` environment knob is declared once in
:mod:`repro.foundations.knobs` and read through it at call time.  Three
rules keep the registry, the code, the CI workflow and the docs in
lockstep:

* ``KNB001`` (module scope) -- a literal ``REPRO_*`` name reaching
  ``os.environ`` / ``os.getenv`` anywhere in a ``repro`` package module
  other than the registry itself.  The legacy ``ENV001`` only polices
  *import-time* reads; ``KNB001`` closes the gap for call-time reads
  (and writes) that bypass the central parser and its junk-tolerance
  rules.
* ``KNB002`` (artifact scope) -- ablation coverage: every registered
  knob with ``ablation="ci"`` must be exercised by a leg of
  ``.github/workflows/ci.yml``; an ``ablation="none"`` opt-out must
  carry a reason; and every ``REPRO_*`` name the workflow references
  must be a registered knob (no ghost legs).  Skipped when the workflow
  file is absent (fixture trees, sliced checkouts).
* ``KNB003`` (artifact scope) -- generated-docs drift: the knob table
  in ``docs/ROBUSTNESS.md`` and the rule table in ``docs/ANALYSIS.md``
  are emitted from the registries (``python -m repro.analysis.lint
  --emit-docs``); a hand edit or a stale table is a finding.

The heavy lifting is in pure helpers (:func:`knob_access_findings`,
:func:`ablation_findings`) so tests can drive them with fixture
registries and workflow texts without touching the real files.
"""

import ast
import re
from typing import Callable, List, Optional, Sequence

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.legacy import _in_repro_tree
from repro.analysis.lint.program import ModuleInfo
from repro.analysis.lint.registry import LintRule, register_rule

__all__ = ["knob_access_findings", "ablation_findings"]

#: The one module allowed to touch ``REPRO_*`` environment variables.
REGISTRY_MODULE = "repro.foundations.knobs"

_KNOB_TOKEN = re.compile(r"\bREPRO_[A-Z0-9_]+\b")

_KNB001_MESSAGE = (
    "direct environment access to %r bypasses the knob registry: declare "
    "the knob in repro.foundations.knobs and go through knobs.value(...) / "
    "knobs.raw_value(...) (reads) or knobs.pin_for_worker(...) (worker "
    "pins), so parsing, ablation coverage and the generated docs stay "
    "centralised"
)


def _knob_literal(node: Optional[ast.expr]) -> Optional[str]:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and node.value.startswith("REPRO_")
    ):
        return node.value
    return None


def _is_environ_expr(module: ModuleInfo, node: ast.expr) -> bool:
    if (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and module.imports.get(node.value.id) == "os"
    ):
        return True
    return isinstance(node, ast.Name) and module.import_from.get(node.id) == (
        "os",
        "environ",
    )


def _is_getenv_callee(module: ModuleInfo, callee: ast.expr) -> bool:
    if (
        isinstance(callee, ast.Attribute)
        and callee.attr in ("getenv", "putenv")
        and isinstance(callee.value, ast.Name)
        and module.imports.get(callee.value.id) == "os"
    ):
        return True
    return isinstance(callee, ast.Name) and module.import_from.get(callee.id) in (
        ("os", "getenv"),
        ("os", "putenv"),
    )


def knob_access_findings(module: ModuleInfo) -> List[Finding]:
    """All ``KNB001`` findings for one module (pure; no context needed)."""
    if not _in_repro_tree(module.path) or module.name == REGISTRY_MODULE:
        return []
    findings: List[Finding] = []

    def report(node: ast.AST, name: str) -> None:
        findings.append(
            Finding(
                module.path,
                node.lineno,
                node.col_offset,
                "KNB001",
                _KNB001_MESSAGE % name,
            )
        )

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Subscript):
            name = _knob_literal(node.slice)
            if name is not None and _is_environ_expr(module, node.value):
                report(node, name)
        elif isinstance(node, ast.Call):
            callee = node.func
            first = _knob_literal(node.args[0]) if node.args else None
            if first is None:
                continue
            if _is_getenv_callee(module, callee):
                report(node, first)
            elif (
                isinstance(callee, ast.Attribute)
                and callee.attr in ("get", "setdefault", "pop")
                and _is_environ_expr(module, callee.value)
            ):
                report(node, first)
    return findings


# ---------------------------------------------------------------------- #
# KNB002: ablation coverage
# ---------------------------------------------------------------------- #


def ablation_findings(
    knob_list: Sequence,
    ci_text: str,
    ci_path: str,
    is_registered: Callable[[str], bool],
) -> List[Finding]:
    """The ``KNB002`` cross-check of a knob registry against a workflow.

    Pure: *knob_list* is any sequence of objects with ``name`` /
    ``ablation`` / ``ablation_reason`` attributes, *ci_text* the
    workflow file contents.  Order is deterministic (registry order,
    then sorted workflow tokens).
    """
    findings: List[Finding] = []
    for knob in knob_list:
        if knob.ablation == "ci":
            if knob.name not in ci_text:
                findings.append(
                    Finding(
                        ci_path,
                        0,
                        0,
                        "KNB002",
                        "registered knob %s declares ablation=\"ci\" but no "
                        "leg of the CI workflow references it: add an "
                        "ablation leg or declare ablation=\"none\" with a "
                        "reason" % knob.name,
                    )
                )
        elif knob.ablation == "none":
            if not knob.ablation_reason:
                findings.append(
                    Finding(
                        ci_path,
                        0,
                        0,
                        "KNB002",
                        "registered knob %s opts out of ablation coverage "
                        "(ablation=\"none\") without an ablation_reason"
                        % knob.name,
                    )
                )
        else:
            findings.append(
                Finding(
                    ci_path,
                    0,
                    0,
                    "KNB002",
                    "registered knob %s has unknown ablation kind %r "
                    "(expected \"ci\" or \"none\")" % (knob.name, knob.ablation),
                )
            )
    for token in sorted(set(_KNOB_TOKEN.findall(ci_text))):
        if not is_registered(token):
            findings.append(
                Finding(
                    ci_path,
                    0,
                    0,
                    "KNB002",
                    "CI workflow references %s but no such knob is declared "
                    "in repro.foundations.knobs: register it or remove the "
                    "leg" % token,
                )
            )
    return findings


def _run_knb002(program, context):
    ci_path = context.ci_path
    if ci_path is None or not ci_path.exists():
        return []
    from repro.foundations import knobs

    return ablation_findings(
        knobs.all_knobs(),
        ci_path.read_text(),
        str(ci_path),
        knobs.is_registered,
    )


# ---------------------------------------------------------------------- #
# KNB003: generated-docs drift
# ---------------------------------------------------------------------- #


def _run_knb003(program, context):
    from repro.analysis.lint import docs

    return docs.drift_findings(context)


# ---------------------------------------------------------------------- #
# registrations
# ---------------------------------------------------------------------- #


def _run_knb001(module, program, context):
    return knob_access_findings(module)


register_rule(
    LintRule(
        "KNB001",
        "unregistered-knob-access",
        "module",
        "literal `REPRO_*` access through `os.environ`/`os.getenv` outside "
        "`repro.foundations.knobs`: declare the knob and read it via "
        "`knobs.value(...)` (writes: `knobs.pin_for_worker`)",
        _run_knb001,
    )
)

register_rule(
    LintRule(
        "KNB002",
        "knob-ablation-coverage",
        "artifact",
        "registry/CI drift: a registered knob without its promised CI "
        "ablation leg, an opt-out without a reason, or a workflow "
        "referencing an undeclared `REPRO_*` name",
        _run_knb002,
    )
)

register_rule(
    LintRule(
        "KNB003",
        "generated-docs-drift",
        "artifact",
        "the generated knob/rule tables in `docs/ROBUSTNESS.md` / "
        "`docs/ANALYSIS.md` differ from the registries: run `python -m "
        "repro.analysis.lint --emit-docs`",
        _run_knb003,
    )
)
