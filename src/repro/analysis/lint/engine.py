"""The lint engine: file walking, parse-once program build, rule driving.

The output contract is the pre-refactor ``tools/lint_repro.py``'s, byte
for byte for the legacy rules (pinned by
``tests/goldens/lint_legacy_fixture.json``):

* paths are walked in argument order; a missing path is an inline
  ``SYN002`` finding; directories yield ``sorted(rglob("*.py"))`` minus
  ``__pycache__``;
* a file that does not parse is a single ``SYN001`` finding;
* per file, findings are sorted (the :class:`Finding` tuple order);
* findings from artifact rules (CI workflow, generated docs) are
  appended after all file findings, sorted.

On top of that, every file is parsed exactly once into the
:class:`~repro.analysis.lint.program.Program` the cross-file rules
share, and rules come from the registry
(:mod:`repro.analysis.lint.registry`) -- importing this module imports
every rule module, so the registry is complete by the time
:func:`lint_paths` runs.
"""

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence

from repro.analysis.lint.findings import Finding
from repro.analysis.lint.program import ModuleInfo, Program
from repro.analysis.lint.registry import all_rules

# Importing the rule modules populates the registry (side-effectful by
# design, exactly like repro.analysis registering its passes).
from repro.analysis.lint import legacy as _legacy  # noqa: F401
from repro.analysis.lint import purity as _purity  # noqa: F401
from repro.analysis.lint import knob_rules as _knob_rules  # noqa: F401
from repro.analysis.lint import deadlines as _deadlines  # noqa: F401

__all__ = ["LintContext", "iter_findings", "lint_paths", "load_program"]


@dataclass
class LintContext:
    """Where the artifact rules find their artifacts.

    Defaults resolve against the current working directory (the repo
    root in CI); a missing artifact makes its rule skip, so linting a
    fixture tree or a sliced checkout never fabricates findings.  Tests
    inject a context pointing at fixture artifacts.
    """

    root: Path = field(default_factory=lambda: Path("."))
    ci_path: Optional[Path] = None
    analysis_doc: Optional[Path] = None
    robustness_doc: Optional[Path] = None

    def __post_init__(self):
        self.root = Path(self.root)
        if self.ci_path is None:
            self.ci_path = self.root / ".github" / "workflows" / "ci.yml"
        if self.analysis_doc is None:
            self.analysis_doc = self.root / "docs" / "ANALYSIS.md"
        if self.robustness_doc is None:
            self.robustness_doc = self.root / "docs" / "ROBUSTNESS.md"


def _parse(source: str, path: str):
    """``(module, finding)``: exactly one of the two is ``None``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as failure:
        return None, Finding(
            path, failure.lineno or 0, failure.offset or 0, "SYN001",
            "file does not parse: %s" % failure.msg,
        )
    return ModuleInfo(path, source, tree), None


def load_program(sources: Sequence) -> "tuple":
    """Parse ``(path, source)`` pairs once into a program.

    Returns ``(program, failures)`` with *failures* mapping path ->
    ``SYN001`` finding for files that did not parse.
    """
    modules: Dict[str, ModuleInfo] = {}
    failures: Dict[str, Finding] = {}
    for path, source in sources:
        if path in modules or path in failures:
            continue
        module, failure = _parse(source, path)
        if module is not None:
            modules[path] = module
        else:
            failures[path] = failure
    return Program(list(modules.values())), failures


def _run_rules(program: Program, context: LintContext, include_artifacts: bool):
    """``(buckets, extra)``: per-file findings and out-of-tree findings."""
    buckets: Dict[str, List[Finding]] = {m.path: [] for m in program.modules}
    extra: List[Finding] = []
    for rule in all_rules():
        if rule.scope == "module":
            for module in program.modules:
                buckets[module.path].extend(rule.run(module, program, context))
        else:
            if rule.scope == "artifact" and not include_artifacts:
                continue
            for finding in rule.run(program, context):
                if finding.path in buckets:
                    buckets[finding.path].append(finding)
                else:
                    extra.append(finding)
    return buckets, extra


def iter_findings(source: str, path: str = "<string>") -> Iterator[Finding]:
    """Lint one source text; syntax errors surface as a ``SYN001`` finding.

    Single-module program: the module- and program-scoped rules run
    (cross-file resolution simply finds fewer targets), artifact rules
    do not -- one source string has no CI workflow or docs tree.
    """
    module, failure = _parse(source, path)
    if failure is not None:
        yield failure
        return
    program = Program([module])
    context = LintContext()
    buckets, _extra = _run_rules(program, context, include_artifacts=False)
    yield from sorted(buckets[path])


def _python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" not in path.parts:
            yield path


def lint_paths(
    paths: Sequence[str], context: Optional[LintContext] = None
) -> List[Finding]:
    """All findings over the given files/directories, in path order."""
    if context is None:
        context = LintContext()
    slots: List = []
    ordered: List[str] = []
    for entry in paths:
        root = Path(entry)
        if not root.exists():
            slots.append(Finding(str(root), 0, 0, "SYN002", "path does not exist"))
            continue
        files = [str(path) for path in _python_files(root)]
        slots.append(files)
        ordered.extend(files)
    program, failures = load_program(
        (path, Path(path).read_text()) for path in ordered
    )
    buckets, extra = _run_rules(program, context, include_artifacts=True)
    findings: List[Finding] = []
    for slot in slots:
        if isinstance(slot, Finding):
            findings.append(slot)
            continue
        for path in slot:
            if path in failures:
                findings.append(failures[path])
            else:
                findings.extend(sorted(buckets[path]))
    findings.extend(sorted(extra))
    return findings
