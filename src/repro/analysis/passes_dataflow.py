"""Dataflow-powered feasibility passes (``DF0xx``).

These upgrade the syntactic liveness checks of
:mod:`repro.analysis.passes_automata` (graph reachability, RA11x) into
semantic proofs from the reachable-equality-types analysis
(:mod:`repro.analysis.dataflow`): a state can be graph-reachable yet
provably unreachable by any *valid* run, and a transition's guard can be
satisfiable in isolation yet unsatisfiable under every register
configuration that actually reaches its source.

Code block (docs/ANALYSIS.md has the full table):

* ``DF001`` -- transition infeasible: its guard is unsatisfiable under
  every reachable equality type at its source.  Carries an infeasibility
  proof (the reachable types, each inconsistent with the guard).
* ``DF002`` -- state abstractly unreachable by any valid run even though
  it is graph-reachable (RA110 already covers the graph-unreachable case).
* ``DF004`` -- register-constancy fact: a register pair provably equal at
  a state on every run reaching it.  Carries a reachability witness.
* ``DF005`` -- analysis skipped (register count above the Bell-domain cap
  or fixpoint budget exhausted); informational, mirrors ``RA139``.
* ``DF006`` -- dead register: its content at a state can never be read
  again (backward liveness).  Carries a "never read after here" cone
  certificate.
* ``DF007`` -- non-co-reachable state: no accepting lasso is abstractly
  reachable from it, refining the graph-level ``RA111`` check.
* ``DF008`` -- write-only register: written/constrained but never read
  by any guard, so it is a projection candidate
  (:func:`repro.core.reduction.project_dead_registers`).

Findings carry machine-readable payloads in ``Diagnostic.data`` so the
JSON report (``--format json``) exposes the witness / proof to CI.
"""

from dataclasses import replace
from typing import Iterator, List, Optional

from repro.core.register_automaton import RegisterAutomaton, Transition
from repro.foundations.diagnostics import Diagnostic, info, warning
from repro.logic.types import abstract_successor_types

from repro.analysis.engine import analysis_pass
from repro.analysis.dataflow import (
    MAX_REGISTERS,
    ReachableTypes,
    analyze_co_reachability,
    analyze_reachable_types,
    analyze_register_liveness,
    reachable_types_outcome,
)
from repro.analysis.passes_automata import _coaccessible, _forward_reachable

#: Witness paths are pair-graph BFS walks; cap how many get computed per
#: report so analysing a large automaton stays linear-ish.
WITNESS_CAP = 10


def _witness_payload(
    types: ReachableTypes, state, budget: List[int]
) -> Optional[list]:
    """A JSON-ready reachability witness for *state*, or ``None`` past the cap."""
    if budget[0] <= 0:
        return None
    budget[0] -= 1
    path = types.witness_path(state)
    if path is None:
        return None
    return [repr(transition) for transition in path]


def _infeasibility_proof(types: ReachableTypes, transition: Transition) -> dict:
    """The per-type refutation: every reachable source type kills the guard."""
    k = types.automaton.k
    source_types = sorted(
        phi.pretty() for phi in types.types_at(transition.source)
    )
    refuted = [
        phi.pretty()
        for phi in sorted(types.types_at(transition.source), key=repr)
        if not abstract_successor_types(phi, transition.guard, k)
    ]
    return {
        "guard": transition.guard.pretty(),
        "reachable_source_types": source_types,
        "refuted_types": refuted,
    }


@analysis_pass(
    "dataflow-feasibility",
    RegisterAutomaton,
    codes=("DF001", "DF002", "DF005"),
)
def dataflow_feasibility_pass(automaton: RegisterAutomaton) -> Iterator[Diagnostic]:
    """Transitions and states proved dead by the equality-types fixpoint."""
    outcome = reachable_types_outcome(automaton)
    types = outcome.value
    if types is None:
        yield replace(
            info(
                "DF005",
                "dataflow analysis skipped: more than %d registers or fixpoint "
                "budget exhausted (the Bell-number domain is too large here)"
                % MAX_REGISTERS,
            ),
            data=dict(outcome.stats),
        )
        return
    witness_budget = [WITNESS_CAP]
    graph_reachable = _forward_reachable(automaton)
    for state in types.unreachable_states():
        if state not in graph_reachable:
            continue  # RA110 already reports graph-unreachable states
        yield warning(
            "DF002",
            "state is graph-reachable but no valid run prefix can reach it "
            "(proved by the reachable-equality-types fixpoint)",
            "state %r" % (state,),
        )
    for transition in types.infeasible_transitions():
        if not types.is_reachable(transition.source):
            continue  # source unreachable: DF002/RA110 is the root cause
        proof = _infeasibility_proof(types, transition)
        witness = _witness_payload(types, transition.source, witness_budget)
        yield replace(
            warning(
                "DF001",
                "transition can never fire: guard %s is unsatisfiable under "
                "every reachable register configuration at %r"
                % (transition.guard.pretty(), transition.source),
                repr(transition),
            ),
            data={"proof": proof, "witness_to_source": witness},
        )


@analysis_pass("dataflow-constancy", RegisterAutomaton, codes=("DF004",))
def dataflow_constancy_pass(automaton: RegisterAutomaton) -> Iterator[Diagnostic]:
    """Register pairs provably equal at a state on every run reaching it.

    Informational refinement facts: they justify narrowing the candidate
    enumeration (see :class:`repro.core.pruning.ConstraintNarrowing`) and
    often reveal redundant registers.  Skipped silently when the analysis
    is over budget (``DF005`` from the feasibility pass covers that).
    """
    if automaton.k < 2:
        return
    types = analyze_reachable_types(automaton)
    if types is None:
        return
    witness_budget = [WITNESS_CAP]
    for state in sorted(automaton.states, key=repr):
        if not types.is_reachable(state):
            continue
        pairs = types.forced_equalities(state)
        if not pairs:
            continue
        witness = _witness_payload(types, state, witness_budget)
        yield replace(
            info(
                "DF004",
                "registers provably aliased on every run reaching this "
                "state: %s"
                % ", ".join("x%d = x%d" % pair for pair in pairs),
                "state %r" % (state,),
            ),
            data={"pairs": [list(pair) for pair in pairs], "witness": witness},
        )


@analysis_pass(
    "dataflow-liveness", RegisterAutomaton, codes=("DF006", "DF008")
)
def dataflow_liveness_pass(automaton: RegisterAutomaton) -> Iterator[Diagnostic]:
    """Dead and write-only registers from the backward liveness fixpoint.

    ``DF008`` (warning) flags registers some guard writes but no guard
    ever reads -- their stored content never influences acceptance, so
    they are exactly the registers
    :func:`repro.core.reduction.project_dead_registers` can drop.
    ``DF006`` (info, like the ``DF004`` refinement facts) reports, per
    reachable state, the registers whose content is provably never read
    *from that state on* -- restricted to registers that are read
    somewhere else (never-read registers are ``DF008``'s, never-mentioned
    ones ``RA120``'s), so each finding is a genuinely positional fact.
    Skipped silently when the analysis is over budget (the backward
    powerset domain declines only past the antichain register cap or the
    edge budget; ``RS004`` events record the decline).
    """
    liveness = analyze_register_liveness(automaton)
    if liveness is None:
        return
    for register in liveness.write_only_registers():
        yield replace(
            warning(
                "DF008",
                "register %d is written but live at no state: no guard "
                "reads it and it is never copied into a live register, so "
                "its content never influences acceptance (projection "
                "candidate)" % register,
            ),
            data={
                "register": register,
                "reduction": "repro.core.reduction.project_dead_registers",
            },
        )
    read_somewhere = set(liveness.read_registers())
    proof_budget = [WITNESS_CAP]
    graph_reachable = _forward_reachable(automaton)
    for state in sorted(automaton.states, key=repr):
        if state not in graph_reachable:
            continue  # RA110 already reports unreachable states
        dead = [r for r in liveness.dead_at(state) if r in read_somewhere]
        if not dead:
            continue
        proofs = {}
        if proof_budget[0] > 0:
            proof_budget[0] -= 1
            proofs = {
                str(register): liveness.never_read_proof(state, register)
                for register in dead
            }
        yield replace(
            info(
                "DF006",
                "register%s %s dead here: the stored content can never be "
                "read again on any path from this state"
                % ("s" if len(dead) > 1 else "",
                   ", ".join("x%d" % r for r in dead)),
                "state %r" % (state,),
            ),
            data={"dead": dead, "proofs": proofs},
        )


@analysis_pass("dataflow-coreachability", RegisterAutomaton, codes=("DF007",))
def dataflow_coreachability_pass(
    automaton: RegisterAutomaton,
) -> Iterator[Diagnostic]:
    """States from which no accepting lasso is abstractly reachable.

    Refines ``RA111`` (graph co-accessibility to an accepting *state*)
    to Buchi semantics under the equality-types abstraction: a state is
    flagged when every path to an accepting cycle is cut by an
    infeasible guard, or when the accepting states it reaches sit on no
    feasible cycle at all.  States other passes already explain are
    skipped -- graph-unreachable (``RA110``), abstractly unreachable
    (``DF002``), graph-dead (``RA111``) -- as is the no-accepting-states
    case (``RA112``).  Silent when the analysis is over budget (``DF005``
    reports the forward decline).
    """
    if not automaton.accepting:
        return  # RA112 covers the empty acceptance condition
    co_reachability = analyze_co_reachability(automaton)
    if co_reachability is None:
        return
    types = analyze_reachable_types(automaton)
    if types is None:
        return
    graph_reachable = _forward_reachable(automaton)
    graph_live = _coaccessible(automaton)
    anchors = sorted(co_reachability.anchors, key=repr)
    for state in co_reachability.non_co_reachable_states():
        if state not in graph_reachable:
            continue  # RA110
        if not types.is_reachable(state):
            continue  # DF002
        if state not in graph_live:
            continue  # RA111
        yield replace(
            warning(
                "DF007",
                "state cannot reach any accepting lasso: every accepting "
                "cycle is abstractly unreachable from here, so no "
                "accepting run visits this state (Buchi semantics)",
                "state %r" % (state,),
            ),
            data={
                "anchors": [repr(a) for a in anchors],
                "reachable_anchors": [],
                "graph_coaccessible": True,
            },
        )
