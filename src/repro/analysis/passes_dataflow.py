"""Dataflow-powered feasibility passes (``DF0xx``).

These upgrade the syntactic liveness checks of
:mod:`repro.analysis.passes_automata` (graph reachability, RA11x) into
semantic proofs from the reachable-equality-types analysis
(:mod:`repro.analysis.dataflow`): a state can be graph-reachable yet
provably unreachable by any *valid* run, and a transition's guard can be
satisfiable in isolation yet unsatisfiable under every register
configuration that actually reaches its source.

Code block (docs/ANALYSIS.md has the full table):

* ``DF001`` -- transition infeasible: its guard is unsatisfiable under
  every reachable equality type at its source.  Carries an infeasibility
  proof (the reachable types, each inconsistent with the guard).
* ``DF002`` -- state abstractly unreachable by any valid run even though
  it is graph-reachable (RA110 already covers the graph-unreachable case).
* ``DF004`` -- register-constancy fact: a register pair provably equal at
  a state on every run reaching it.  Carries a reachability witness.
* ``DF005`` -- analysis skipped (register count above the Bell-domain cap
  or fixpoint budget exhausted); informational, mirrors ``RA139``.

Findings carry machine-readable payloads in ``Diagnostic.data`` so the
JSON report (``--format json``) exposes the witness / proof to CI.
"""

from dataclasses import replace
from typing import Iterator, List, Optional

from repro.core.register_automaton import RegisterAutomaton, Transition
from repro.foundations.diagnostics import Diagnostic, info, warning
from repro.logic.types import abstract_successor_types

from repro.analysis.engine import analysis_pass
from repro.analysis.dataflow import (
    MAX_REGISTERS,
    ReachableTypes,
    analyze_reachable_types,
    reachable_types_outcome,
)
from repro.analysis.passes_automata import _forward_reachable

#: Witness paths are pair-graph BFS walks; cap how many get computed per
#: report so analysing a large automaton stays linear-ish.
WITNESS_CAP = 10


def _witness_payload(
    types: ReachableTypes, state, budget: List[int]
) -> Optional[list]:
    """A JSON-ready reachability witness for *state*, or ``None`` past the cap."""
    if budget[0] <= 0:
        return None
    budget[0] -= 1
    path = types.witness_path(state)
    if path is None:
        return None
    return [repr(transition) for transition in path]


def _infeasibility_proof(types: ReachableTypes, transition: Transition) -> dict:
    """The per-type refutation: every reachable source type kills the guard."""
    k = types.automaton.k
    source_types = sorted(
        phi.pretty() for phi in types.types_at(transition.source)
    )
    refuted = [
        phi.pretty()
        for phi in sorted(types.types_at(transition.source), key=repr)
        if not abstract_successor_types(phi, transition.guard, k)
    ]
    return {
        "guard": transition.guard.pretty(),
        "reachable_source_types": source_types,
        "refuted_types": refuted,
    }


@analysis_pass(
    "dataflow-feasibility",
    RegisterAutomaton,
    codes=("DF001", "DF002", "DF005"),
)
def dataflow_feasibility_pass(automaton: RegisterAutomaton) -> Iterator[Diagnostic]:
    """Transitions and states proved dead by the equality-types fixpoint."""
    outcome = reachable_types_outcome(automaton)
    types = outcome.value
    if types is None:
        yield replace(
            info(
                "DF005",
                "dataflow analysis skipped: more than %d registers or fixpoint "
                "budget exhausted (the Bell-number domain is too large here)"
                % MAX_REGISTERS,
            ),
            data=dict(outcome.stats),
        )
        return
    witness_budget = [WITNESS_CAP]
    graph_reachable = _forward_reachable(automaton)
    for state in types.unreachable_states():
        if state not in graph_reachable:
            continue  # RA110 already reports graph-unreachable states
        yield warning(
            "DF002",
            "state is graph-reachable but no valid run prefix can reach it "
            "(proved by the reachable-equality-types fixpoint)",
            "state %r" % (state,),
        )
    for transition in types.infeasible_transitions():
        if not types.is_reachable(transition.source):
            continue  # source unreachable: DF002/RA110 is the root cause
        proof = _infeasibility_proof(types, transition)
        witness = _witness_payload(types, transition.source, witness_budget)
        yield replace(
            warning(
                "DF001",
                "transition can never fire: guard %s is unsatisfiable under "
                "every reachable register configuration at %r"
                % (transition.guard.pretty(), transition.source),
                repr(transition),
            ),
            data={"proof": proof, "witness_to_source": witness},
        )


@analysis_pass("dataflow-constancy", RegisterAutomaton, codes=("DF004",))
def dataflow_constancy_pass(automaton: RegisterAutomaton) -> Iterator[Diagnostic]:
    """Register pairs provably equal at a state on every run reaching it.

    Informational refinement facts: they justify narrowing the candidate
    enumeration (see :class:`repro.core.pruning.ConstraintNarrowing`) and
    often reveal redundant registers.  Skipped silently when the analysis
    is over budget (``DF005`` from the feasibility pass covers that).
    """
    if automaton.k < 2:
        return
    types = analyze_reachable_types(automaton)
    if types is None:
        return
    witness_budget = [WITNESS_CAP]
    for state in sorted(automaton.states, key=repr):
        if not types.is_reachable(state):
            continue
        pairs = types.forced_equalities(state)
        if not pairs:
            continue
        witness = _witness_payload(types, state, witness_budget)
        yield replace(
            info(
                "DF004",
                "registers provably aliased on every run reaching this "
                "state: %s"
                % ", ".join("x%d = x%d" % pair for pair in pairs),
                "state %r" % (state,),
            ),
            data={"pairs": [list(pair) for pair in pairs], "witness": witness},
        )
