"""Command-line front end: ``python -m repro.analysis <target> ...``.

A *target* is a path to a Python script (e.g. ``examples/quickstart.py``)
or a dotted module name.  The CLI executes the target with lightweight
instrumentation that records every :class:`RegisterAutomaton`,
:class:`WorkflowSpec`, :class:`Dfa` and :class:`Nfa` constructed along the
way -- including the intermediates the library builds internally -- then
runs every registered analysis pass over each recorded object and renders
one merged report per target.

Exit status is nonzero when any ERROR-severity diagnostic was produced
(or any WARNING, under ``--strict``), so the command slots directly into
CI: ``for f in examples/*.py; do python -m repro.analysis "$f"; done``.
With ``--format json`` the full report (pass id, severity, message,
location, witness payload) is emitted as one JSON document, so CI can
diff findings structurally instead of grepping the rendered table.
"""

import argparse
import contextlib
import io
import json
import runpy
import sys
from functools import wraps
from typing import Iterator, List, Sequence, Tuple

from repro.automata.dfa import Dfa
from repro.automata.nfa import Nfa
from repro.core.register_automaton import RegisterAutomaton
from repro.foundations.diagnostics import Report, Severity, error, merge_reports
from repro.workflows.spec import WorkflowSpec

from repro.analysis.engine import analyze

#: The classes the CLI instruments.  Order fixes report grouping.
CAPTURED_CLASSES: Tuple[type, ...] = (RegisterAutomaton, WorkflowSpec, Dfa, Nfa)


@contextlib.contextmanager
def capture_instances(classes: Sequence[type] = CAPTURED_CLASSES) -> Iterator[List]:
    """Temporarily record every instance the given classes construct.

    Yields the (live, append-only) list of instances.  Restores the
    original ``__init__`` methods on exit, even when the monitored code
    raises.
    """
    captured: List = []
    originals = []

    def instrument(cls: type) -> None:
        original = cls.__init__

        @wraps(original)
        def recording_init(self, *args, **kwargs):
            original(self, *args, **kwargs)
            if type(self) is cls:  # subclasses record under their own entry, once
                captured.append(self)

        originals.append((cls, original))
        cls.__init__ = recording_init

    for cls in classes:
        instrument(cls)
    try:
        yield captured
    finally:
        for cls, original in originals:
            cls.__init__ = original


def _execute_target(target: str) -> None:
    """Run a script path or dotted module under ``__main__`` semantics."""
    saved_argv = sys.argv
    sys.argv = [target]
    try:
        if target.endswith(".py"):
            runpy.run_path(target, run_name="__main__")
        else:
            runpy.run_module(target, run_name="__main__")
    finally:
        sys.argv = saved_argv


def analyze_target(target: str, echo: bool = False) -> Report:
    """Execute *target* and analyze everything it constructs."""
    sink = io.StringIO()
    with capture_instances() as captured:
        try:
            if echo:
                _execute_target(target)
            else:
                with contextlib.redirect_stdout(sink):
                    _execute_target(target)
        except SystemExit as stop:
            if stop.code not in (None, 0):
                return Report(
                    target,
                    [error("XX001", "target exited with status %r" % (stop.code,))],
                )
        except KeyboardInterrupt:
            # Never fold Ctrl-C into an XX001 crash report: main() turns it
            # into a partial report and the conventional 130 exit status.
            raise
        except BaseException as failure:
            return Report(
                target,
                [
                    error(
                        "XX001",
                        "target crashed before analysis: %s: %s"
                        % (type(failure).__name__, failure),
                    )
                ],
            )
    counters = {cls.__name__: 0 for cls in CAPTURED_CLASSES}
    reports = []
    for obj in captured:
        label = type(obj).__name__
        counters[label] = counters.get(label, 0) + 1
        reports.append(analyze(obj, subject="%s#%d" % (label, counters[label])))
    merged = merge_reports(target, reports)
    return merged


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repro diagnostic passes over everything a "
        "script or module constructs.",
    )
    parser.add_argument("targets", nargs="+", help="script paths or dotted module names")
    parser.add_argument(
        "--strict", action="store_true", help="exit nonzero on warnings too"
    )
    parser.add_argument(
        "--show-info",
        action="store_true",
        help="include INFO findings in the rendered report",
    )
    parser.add_argument(
        "--echo",
        action="store_true",
        help="let the target's own stdout through instead of swallowing it",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="text renders one table per target; json emits one machine-"
        "readable document covering every target",
    )
    options = parser.parse_args(argv)
    min_render = Severity.INFO if options.show_info else Severity.WARNING
    fail_at = Severity.WARNING if options.strict else Severity.ERROR
    exit_code = 0
    interrupted = False
    payload = []
    # One try around the whole target loop: a Ctrl-C landing anywhere --
    # inside analyze_target, during render()/JSON assembly, or between
    # targets -- takes the partial-report path instead of escaping as a
    # traceback.  Whatever targets already finished are rendered
    # normally, the in-progress one gets an honest XX002 marker, and the
    # process exits with the conventional 130 so scripts can tell
    # "interrupted" from "findings" (1).
    current = options.targets[0]
    try:
        for current in options.targets:
            report = analyze_target(current, echo=options.echo)
            if options.format == "json":
                entry = report.as_dict()
                entry["target"] = current
                payload.append(entry)
            else:
                print(report.render(min_severity=min_render))
            if any(d.severity >= fail_at for d in report):
                exit_code = 1
    except KeyboardInterrupt:
        interrupted = True
        marker = Report(
            current,
            [
                error(
                    "XX002",
                    "analysis interrupted before this target finished; "
                    "the report is partial",
                )
            ],
        )
        if options.format == "json":
            entry = marker.as_dict()
            entry["target"] = current
            payload.append(entry)
        else:
            print(marker.render(min_severity=min_render))
    if options.format == "json":
        print(json.dumps({"reports": payload}, indent=2, sort_keys=True))
    return 130 if interrupted else exit_code
