"""Quickstart: the paper's running example, end to end.

Builds the 2-register automaton of Example 1, inspects its traces, projects
away register 2 (Examples 4/5 / Theorem 13), and shows the resulting global
constraint doing its job on concrete runs.

Run with:  python examples/quickstart.py
"""

from repro import (
    Database,
    FiniteRun,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    find_lasso_run,
    project_register_automaton,
)


def main() -> None:
    # ----------------------------------------------------------------- #
    # Example 1: two registers; register 2 silently pins the value that
    # register 1 must return to whenever control revisits q1.
    # ----------------------------------------------------------------- #
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    automaton = RegisterAutomaton(
        k=2,
        signature=Signature.empty(),
        states={"q1", "q2"},
        initial={"q1"},
        accepting={"q1"},
        transitions=[("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )
    print("Example 1 automaton:", automaton)

    database = Database(Signature.empty())
    run = find_lasso_run(automaton, database)
    print("\nA concrete lasso run (loop starts at %d):" % run.loop_start)
    for position, (row, state) in enumerate(zip(run.data, run.states)):
        print("  position %d: state %-3s registers %r" % (position, state, row))

    # ----------------------------------------------------------------- #
    # Example 4: projecting onto register 1 cannot be captured by any
    # register automaton -- the projection's defining condition is
    # "the initial value recurs", a long-distance constraint.
    # Theorem 13: an *extended* automaton captures it exactly.
    # ----------------------------------------------------------------- #
    view = project_register_automaton(automaton, 1)
    print("\nProjection onto register 1:", view)
    for constraint in view.constraints:
        print("  global constraint:", constraint.kind, "registers",
              (constraint.i, constraint.j),
              "| DFA size", view.constraint_dfa(constraint).size())

    # The view accepts exactly the projected behaviours: demonstrate on two
    # candidate one-register traces over the view's own control states.
    normalized_states = run.states  # states of the original control
    projected_run = run.project(1)
    print("\nprojected register trace:", [row[0] for row in projected_run.data])

    # Validate through the view's constraints on concrete view runs: the
    # underlying automaton alone is too permissive (nondeterministic guard
    # completions), the global constraints filter it down to the projection.
    from repro import generate_finite_runs

    accepted = rejected = None
    for candidate in generate_finite_runs(
        view.automaton, database, 5, pool=("a", "b", "c"), limit=3000
    ):
        if view.satisfies_constraints(candidate):
            accepted = accepted or candidate
        else:
            rejected = rejected or candidate
        if accepted and rejected:
            break
    print("\na view run ACCEPTED by the constraints:",
          [row[0] for row in accepted.data])
    print("a view run REJECTED by the constraints:",
          [row[0] for row in rejected.data])
    print("  reason:", view.constraint_violation(rejected))


if __name__ == "__main__":
    main()
