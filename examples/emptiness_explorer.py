"""Exploring the quasi-regular boundary (Theorem 9, Example 8).

Example 8 is the paper's witness that extended-automaton state traces are
*not* omega-regular: with a unary database P and a constraint forcing
p-blocks to use pairwise distinct values, the length of p-blocks is bounded
by |P| -- a non-regular condition.  This script probes the boundary: lassos
with q-breaks are realisable, the pure-p lasso is not, and the decision is
the bounded-clique test on the trace's inequality graph G_w.

Run with:  python examples/emptiness_explorer.py
"""

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    check_emptiness,
    rel,
)
from repro.automata.regex import concat, literal, star
from repro.core.emptiness import (
    _normalize_for_analysis,
    clique_number,
    trace_has_bounded_cliques,
    trace_is_consistent,
)
from repro.core.symbolic import scontrol_buchi
from repro.core.tracewindow import TraceWindow


def main() -> None:
    signature = Signature(relations={"P": 1})
    guard = SigmaType([rel("P", X(1))])
    base = RegisterAutomaton(
        1,
        signature,
        {"p", "q"},
        {"p"},
        {"p", "q"},
        [("p", guard, "p"), ("p", guard, "q"), ("q", guard, "q"), ("q", guard, "p")],
    )
    p_block = concat(literal("p"), star(literal("p")), literal("p"))
    extended = ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, p_block)])
    print("Example 8:", extended)

    result = check_emptiness(extended, max_prefix=1, max_cycle=4)
    print("\nfull automaton nonempty:", not result.empty)
    database, run = result.witness.lasso_run()
    print("witness lasso run data:", run.data, "states:",
          tuple(s[0][0] for s in run.states))
    print("witness database:", database)

    # Probe individual lasso traces: increasing p-block length inside the loop.
    normalised = _normalize_for_analysis(extended)
    buchi = scontrol_buchi(normalised.automaton)
    print("\nper-lasso realisability (loop shape -> verdict):")
    probed = 0
    for lasso in buchi.iter_accepted_lassos(4, 1):
        shape = "".join(pair[0][0][0] for pair in lasso.period)
        consistent = trace_is_consistent(normalised, lasso)
        bounded = consistent and trace_has_bounded_cliques(normalised, lasso)
        verdict = "realisable" if (consistent and bounded) else (
            "inconsistent" if not consistent else "unbounded cliques"
        )
        window = TraceWindow(
            lasso,
            1,
            length=len(lasso.prefix) + 3 * len(lasso.period),
            inequality_constraints=normalised.inequality_constraints(),
            states=normalised.automaton.states,
        )
        vertices, edges = window.constraint_graph()
        print(
            "  (%s)^w: %-18s  |G_w window|: %d vertices, %d edges, clique %d"
            % (shape, verdict, len(vertices), len(edges), clique_number(vertices, edges))
        )
        probed += 1
        if probed >= 6:
            break

    # The pure-p automaton is empty: the clique grows with the window.
    p_only = ExtendedAutomaton(
        RegisterAutomaton(1, signature, {"p"}, {"p"}, {"p"}, [("p", guard, "p")]),
        [GlobalConstraint("neq", 1, 1, p_block)],
    )
    verdict = check_emptiness(p_only, max_prefix=1, max_cycle=3)
    print("\np-only automaton empty:", verdict.empty,
          "(the paper's non-omega-regular boundary)")


if __name__ == "__main__":
    main()
