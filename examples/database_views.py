"""Hiding the database: Example 23 and Theorem 24 (Section 6).

Builds the paper's Example 23 automaton -- a walk whose register 1 must be
an E-successor of the hidden register 2 at even positions and a
non-successor at odd ones -- and derives the enhanced automaton describing
the projections when register 2 AND the entire database are hidden.

The headline behaviour: values seen at even positions and values seen at
odd positions must be disjoint, and only finitely many values may occur --
constraints no plain extended automaton can express (the paper's motivation
for tuple-inequality and finiteness constraints).

Run with:  python examples/database_views.py
"""

from repro import (
    Database,
    FiniteRun,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    generate_finite_runs,
    nrel,
    project_with_database,
    rel,
)
from repro.core.theorem24 import _normalize_db
from repro.logic.types import project_type_dataless


def build_example23() -> RegisterAutomaton:
    signature = Signature(relations={"E": 2, "U": 1})
    delta = SigmaType([eq(X(2), Y(2)), rel("U", X(1)), rel("E", X(2), X(1))])
    delta_neg = SigmaType([eq(X(2), Y(2)), rel("U", X(1)), nrel("E", X(2), X(1))])
    return RegisterAutomaton(
        2,
        signature,
        {"p", "q"},
        {"p"},
        {"p"},
        [("p", delta, "q"), ("q", delta_neg, "p")],
    )


def main() -> None:
    automaton = build_example23()
    print("Example 23 automaton:", automaton)

    database = Database(
        automaton.signature,
        relations={"E": [("c", "d0")], "U": [("d0",), ("d1",)]},
    )
    print("\nconcrete runs over the paper's database D = {E(c,d0), U(d0), U(d1)}:")
    normalised = _normalize_db(automaton)
    shown = 0
    for run in generate_finite_runs(normalised, database, 5, pool=("c", "d0", "d1"), limit=3):
        print("  register 1:", [row[0] for row in run.data],
              " (register 2 pinned to %r)" % run.data[0][1])
        shown += 1

    # ----------------------------------------------------------------- #
    # Theorem 24: hide register 2 and the database.
    # ----------------------------------------------------------------- #
    view = project_with_database(automaton, 1)
    print("\ndatabase-hidden view:", view)
    print("  equality constraints:   %d" % len(view.equality_constraints))
    print("  tuple inequalities:     %d" % len(view.tuple_constraints))
    print("  finiteness constraints: %d" % len(view.finiteness_constraints))

    # Check the even/odd disjointness on candidate visible traces.
    print("\nconstraint verdicts on candidate visible traces:")
    states = sorted(normalised.states, key=repr)
    p0 = next(s for s in states if s[0] == "p" and s in normalised.initial)

    def assemble(values):
        """Backtracking assignment of completions matching the data."""
        from repro.db.evaluation import evaluate_type, transition_valuation

        empty = Database(Signature.empty())
        transition_set = {
            (t.source, t.guard, t.target) for t in normalised.transitions
        }

        def extend(index, chain):
            if index == len(values):
                guards = tuple(
                    project_type_dataless(normalised.guard_of_state(chain[i]), 1)
                    for i in range(len(values) - 1)
                )
                run = FiniteRun(tuple((v,) for v in values), tuple(chain), guards)
                if view.constraint_violation(run) is None:
                    return run, True
                return run, False
            wanted = "p" if index % 2 == 0 else "q"
            best = None
            for state in states:
                if state[0] != wanted:
                    continue
                if index == 0:
                    if state not in normalised.initial:
                        continue
                    result = extend(1, [state])
                    if result and result[1]:
                        return result
                    best = best or result
                    continue
                previous = chain[-1]
                guard = normalised.guard_of_state(previous)
                if (previous, guard, state) not in transition_set:
                    continue
                visible = project_type_dataless(guard, 1)
                if not evaluate_type(
                    visible, empty,
                    transition_valuation((values[index - 1],), (values[index],)),
                ):
                    continue
                result = extend(index + 1, chain + [state])
                if result and result[1]:
                    return result
                best = best or result
            return best

        return extend(0, [])

    for values in (["u", "v", "u", "v", "u"], ["u", "v", "u", "u", "u"]):
        outcome = assemble(values)
        if outcome is None:
            print("  %r: no consistent control labelling" % (values,))
            continue
        run, accepted = outcome
        print("  %r: %s" % (values, "ACCEPTED" if accepted else "REJECTED"))
        if not accepted:
            print("      reason:", view.constraint_violation(run))


if __name__ == "__main__":
    main()
