"""The manuscript-review workflow and its role views (Section 1).

Builds the paper's motivating workflow -- papers, authors, topics and
reviewers evolving through submission, review, revision and decision, with
a database of paper topics and reviewer preferences -- and derives:

* the **author view** (reviewer hidden; authors must not learn who reviews
  them), via the Theorem 13 projection on the database-free variant;
* the **double-blind reviewer view** (author hidden);
* the **outsider view** with the whole database hidden too (Theorem 24).

Run with:  python examples/manuscript_review.py
"""

from repro import (
    Database,
    database_hidden_view,
    find_lasso_run,
    manuscript_review_workflow,
    role_view,
)
from repro.db import Signature


def main() -> None:
    # ----------------------------------------------------------------- #
    # The workflow over a concrete conference database.
    # ----------------------------------------------------------------- #
    spec = manuscript_review_workflow(with_database=True)
    automaton = spec.compile()
    print("workflow automaton:", automaton)
    print("attributes:", spec.attributes)

    database = Database(
        spec.signature,
        relations={
            "PaperTopic": [("p17", "query-eval"), ("p42", "verification")],
            "Prefers": [
                ("alice", "query-eval"),
                ("bob", "verification"),
                ("carol", "query-eval"),
            ],
        },
    )
    run = find_lasso_run(automaton, database)
    print("\na run of the workflow (loop starts at %d):" % run.loop_start)
    for position, (row, state) in enumerate(zip(run.data, run.states)):
        record = dict(zip(spec.attributes, row))
        print("  %-12s %s" % (state, record))

    # ----------------------------------------------------------------- #
    # Author view: hide the reviewer (database-free variant, Theorem 13).
    # ----------------------------------------------------------------- #
    free_spec = manuscript_review_workflow(with_database=False)
    author_view = role_view(free_spec, "author", hidden=["reviewer"])
    print("\nauthor view (reviewer hidden):")
    print("  visible attributes:", author_view.visible_attributes)
    print("  view automaton:", author_view.automaton.automaton)
    print("  transported global constraints:", len(author_view.automaton.constraints))

    # Double-blind: reviewers do not see authors.
    reviewer_view = role_view(free_spec, "reviewer", hidden=["author"])
    print("\ndouble-blind reviewer view (author hidden):")
    print("  visible attributes:", reviewer_view.visible_attributes)
    print("  constraints:", len(reviewer_view.automaton.constraints))

    # ----------------------------------------------------------------- #
    # Outsider view: hide reviewer AND the entire database (Theorem 24).
    # ----------------------------------------------------------------- #
    outsider = database_hidden_view(spec, "outsider", hidden=["reviewer"])
    enhanced = outsider.automaton
    print("\noutsider view (reviewer + database hidden):")
    print("  visible attributes:", outsider.visible_attributes)
    print("  equality constraints:    %d" % len(enhanced.equality_constraints))
    print("  tuple inequalities:      %d" % len(enhanced.tuple_constraints))
    print("  finiteness constraints:  %d" % len(enhanced.finiteness_constraints))
    print(
        "  (finiteness: values the run forces into the hidden database's\n"
        "   active domain must come from a finite set -- Section 6)"
    )

    # The projected run of the concrete workflow satisfies the author view's
    # data-level discipline: the paper id persists, the reviewer is gone.
    projected = run.project(3)
    print("\nprojected run data (author view):")
    for row, state in zip(projected.data, projected.states):
        print("  %-12s %s" % (state, dict(zip(outsider.visible_attributes, row))))


if __name__ == "__main__":
    main()
