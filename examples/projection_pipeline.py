"""The full projection theory, end to end (Sections 3-5).

Walks through the paper's chain of results on executable instances:

1. Example 7: an extended automaton no register automaton can simulate
   ("all register values distinct") -- nonempty, but with no data-periodic
   run; we extract arbitrarily long concrete witnesses.
2. Example 16: LR-boundedness is syntactic -- two register-trace-equivalent
   automata, one LR-bounded, one not.
3. Theorem 19 both ways: a projection is LR-bounded (Proposition 20 via
   Lemma 21), and an LR-bounded automaton is realised as a projection
   (Proposition 22's register-bank synthesis), validated by brute force.

Run with:  python examples/projection_pipeline.py
"""

from repro import (
    Database,
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    check_emptiness,
    eq,
    generate_finite_runs,
    is_lr_bounded,
    lr_bound_estimate,
    neq,
    project_register_automaton,
    synthesize_register_automaton,
)
from repro.automata.regex import concat, literal, plus

EMPTY = SigmaType()


def canonical(rows):
    names = {}
    return tuple(tuple(names.setdefault(v, len(names)) for v in row) for row in rows)


def main() -> None:
    # ----------------------------------------------------------------- #
    # 1. Example 7: beyond register automata.
    # ----------------------------------------------------------------- #
    base = RegisterAutomaton(
        1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", EMPTY, "q")]
    )
    all_distinct = ExtendedAutomaton(
        base,
        [GlobalConstraint("neq", 1, 1, concat(literal("q"), plus(literal("q"))))],
    )
    result = check_emptiness(all_distinct)
    print("Example 7 (all values distinct):")
    print("  nonempty:", not result.empty)
    print("  data-periodic run exists:", result.witness.lasso_run() is not None)
    _db, run8 = result.witness.finite_witness(8)
    print("  an 8-step witness:", [row[0] for row in run8.data])

    # ----------------------------------------------------------------- #
    # 2. Example 16: LR-boundedness is not semantic.
    # ----------------------------------------------------------------- #
    change = SigmaType([neq(X(1), Y(1))])
    bounded = ExtendedAutomaton(
        RegisterAutomaton(1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", change, "q")]),
        [],
    )
    unbounded = ExtendedAutomaton(
        RegisterAutomaton(
            1,
            Signature.empty(),
            {"p", "q"},
            {"p", "q"},
            {"p", "q"},
            [("p", change, "p"), ("q", change, "q")],
        ),
        [GlobalConstraint("neq", 1, 1, concat(literal("p"), plus(literal("p"))))],
    )
    print("\nExample 16 (trace-equivalent pair):")
    print("  A  (local only)          LR-bounded:", is_lr_bounded(bounded))
    print("  A' (global p-pairs)      LR-bounded:", is_lr_bounded(unbounded))
    print("  Example 17 corollary: the all-distinct automaton is LR-bounded:",
          is_lr_bounded(all_distinct))

    # ----------------------------------------------------------------- #
    # 3. Theorem 19, both directions.
    # ----------------------------------------------------------------- #
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    example1 = RegisterAutomaton(
        2,
        Signature.empty(),
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )
    projected = project_register_automaton(example1, 1)
    print("\nProposition 20 (projection -> LR-bounded):")
    print("  projection of Example 1 is LR-bounded:", is_lr_bounded(projected, max_cycle=3))
    print("  observed LR bound:", lr_bound_estimate(projected, max_cycle=3), "(<= k = 2)")

    alternating = ExtendedAutomaton(
        RegisterAutomaton(
            1,
            Signature.empty(),
            {"p", "q"},
            {"p"},
            {"p"},
            [("p", EMPTY, "q"), ("q", EMPTY, "p")],
        ),
        [GlobalConstraint("neq", 1, 1, concat(literal("p"), literal("q")))],
    )
    synthesized = synthesize_register_automaton(alternating, bank_a=1, bank_b=1)
    print("\nProposition 22 (LR-bounded -> projection):")
    print("  synthesized register automaton:", synthesized)

    database = Database(Signature.empty())
    pool = ("a", "b", "c")
    want = {
        canonical(run.data)
        for run in generate_finite_runs(alternating.automaton, database, 5, pool=pool)
        if alternating.satisfies_constraints(run)
    }
    got = {
        canonical(tuple(row[:1] for row in run.data))
        for run in generate_finite_runs(synthesized, database, 5, pool=pool)
    }
    print("  Pi_1(Reg(A)) == Reg(B) on 5-prefixes:", want == got,
          "(%d traces)" % len(want))


if __name__ == "__main__":
    main()
