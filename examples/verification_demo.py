"""LTL-FO verification of workflows (Theorem 12).

Checks temporal properties of the Example 1 automaton and of the
manuscript-review workflow, with counterexample extraction and independent
ground-truth confirmation (the semantic oracle re-evaluates the property
on the concrete counterexample run).

Run with:  python examples/verification_demo.py
"""

from repro import (
    ExtendedAutomaton,
    LtlFoSentence,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    eq,
    manuscript_review_workflow,
    run_satisfies,
    verify,
)
from repro.logic.formulas import atom_eq
from repro.logic.terms import Var, Y
from repro.ltl import Eventually, Globally, Prop
from repro.ltl.syntax import Not_, Or_


def example1() -> RegisterAutomaton:
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    return RegisterAutomaton(
        2,
        Signature.empty(),
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )


def check(extended, name, sentence):
    result = verify(extended, sentence)
    verdict = "HOLDS" if result.holds else "FAILS"
    exactness = "exact" if result.exact else "bounded"
    print("  %-38s %s (%s, product %d states)" % (name, verdict, exactness, result.product_size))
    if not result.holds and result.counterexample is not None:
        out = result.counterexample.lasso_run()
        if out is not None:
            database, run = out
            visible = run.project(extended.k)
            print("     counterexample register trace:", visible.data)
            print(
                "     oracle confirms violation:",
                not run_satisfies(sentence, visible, database),
            )
    return result


def main() -> None:
    automaton = ExtendedAutomaton(example1(), [])
    eq12 = {"eq12": atom_eq(X(1), X(2))}

    print("Example 1 automaton:")
    check(
        automaton,
        "F eq12 (registers eventually equal)",
        LtlFoSentence(skeleton=Eventually(Prop("eq12")), propositions=eq12),
    )
    check(
        automaton,
        "G eq12 (always equal)",
        LtlFoSentence(skeleton=Globally(Prop("eq12")), propositions=eq12),
    )
    check(
        automaton,
        "G (eq12 -> F eq12) (recurrence)",
        LtlFoSentence(
            skeleton=Globally(Or_(Not_(Prop("eq12")), Eventually(Prop("eq12")))),
            propositions=eq12,
        ),
    )

    # A property with a universally quantified global variable z:
    # whatever value register 2 ever holds, register 1 eventually holds it.
    z = Var("z1")
    check(
        automaton,
        "forall z: G (x2=z -> F x1=z)",
        LtlFoSentence(
            skeleton=Globally(Or_(Not_(Prop("x2z")), Eventually(Prop("x1z")))),
            propositions={"x2z": atom_eq(X(2), z), "x1z": atom_eq(X(1), z)},
            global_vars=(z,),
        ),
    )

    print("\nManuscript-review workflow:")
    spec = manuscript_review_workflow(with_database=False)
    workflow = ExtendedAutomaton(spec.compile(), [])
    author = spec.register_of("author")
    reviewer = spec.register_of("reviewer")
    check(
        workflow,
        "F (reviewer != author)",
        LtlFoSentence(
            skeleton=Eventually(Prop("distinct")),
            propositions={"distinct": ~atom_eq(X(author), X(reviewer))},
        ),
    )
    paper = spec.register_of("paper")
    check(
        workflow,
        "G (paper id never changes)",
        LtlFoSentence(
            skeleton=Globally(Prop("kept")),
            propositions={"kept": atom_eq(X(paper), Y(paper))},
        ),
    )


if __name__ == "__main__":
    main()
