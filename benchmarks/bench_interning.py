"""E14 (PR 3) -- hash-consing ablation and parallel lasso search.

Three experiments, all recorded as A/B medians in the session table (and
hence in ``BENCH_3.json``):

* **streaming validity, interning on/off**: each streamed event carries
  its guard in wire form (a bag of literals); the checker reconstructs the
  guard per position and validates the prefix.  With interning on, the
  reconstruction is an intern-table hit and every per-value cache (guard
  closure, evaluation memo) is shared; off, each position pays closure
  construction and literal re-evaluation.
* **emptiness, interning on/off**: a batch of emptiness decisions for
  Example 2/3 automata arriving in wire form -- each decision rebuilds
  the guards from literal bags, assembles the automaton, and runs
  ``check_emptiness`` (plain and inequality-constrained).  Interning
  makes the rebuilt guards identical to earlier ones, so normalisation
  (the completion enumeration, closures, satisfiability) is served from
  per-value caches; off, every decision pays it again.
* **lasso grid, serial vs REPRO_WORKERS=2**: the same emptiness decision
  on a grid of enumeration bounds, with the candidate checks dispatched
  to the process pool.  Verdicts and ``candidates_checked`` must be
  byte-identical to serial; the table records both medians and the ratio.

Between A/B modes every shared cache is cleared (value caches, intern
tables), so neither mode serves entries computed by the other.  Quick
mode (``REPRO_BENCH_QUICK=1``, the CI smoke job) shrinks prefix lengths
and enumeration bounds.
"""

import gc
import os
import statistics
import time

from repro import (
    Database,
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    check_emptiness,
    eq,
    find_lasso_run,
    manuscript_review_workflow,
    rel,
)
from repro.automata.regex import concat, literal, plus, star
from repro.core.caching import clear_value_caches
from repro.core.parallel import shutdown_executor
from repro.foundations.interning import clear_intern_tables, set_interning

from _tables import register_table

def _quick():
    """Quick mode (CI smoke) -- read per call, never cached (ENV001)."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _prefix_length():
    return 200 if _quick() else 1000


def _emptiness_batch():
    return 4 if _quick() else 12


def _grid_cycles():
    return (5,) if _quick() else (6, 7)


def _repeats():
    return 3 if _quick() else 5


ROWS = []


def _median_seconds(fn, repeats=None):
    if repeats is None:
        repeats = _repeats()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _fresh_caches():
    clear_value_caches()
    clear_intern_tables()
    gc.collect()


def _ablate(fn):
    """Median seconds for *fn* with interning on and off (cold caches)."""
    _fresh_caches()
    fn()  # warm within-mode caches the way a steady-state session would
    on = _median_seconds(fn)
    set_interning(False)
    try:
        _fresh_caches()
        fn()
        off = _median_seconds(fn)
    finally:
        set_interning(True)
    _fresh_caches()
    return on, off


def _row(label, on, off):
    ROWS.append((label, "%.4f" % on, "%.4f" % off, "%.2fx" % (off / on)))


# ---------------------------------------------------------------------- #
# workloads
# ---------------------------------------------------------------------- #


def _example23_wire():
    """The Example 2/3 guards as literal bags (the wire format)."""
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    return [tuple(d.literals) for d in (d1, d2, d3)]


def _example23_extended(constrained, wire=None):
    """The Example 2/3 loop automaton, optionally inequality-constrained."""
    if wire is None:
        wire = _example23_wire()
    d1, d2, d3 = (SigmaType(literals) for literals in wire)
    automaton = RegisterAutomaton(
        2,
        Signature.empty(),
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )
    constraints = []
    if constrained:
        factor = concat(literal("q1"), plus(literal("q2")), literal("q1"))
        constraints = [GlobalConstraint("neq", 1, 1, factor)]
    return ExtendedAutomaton(automaton, constraints)


def _p_only_extended():
    """Example 8 restricted to p-blocks: empty, so every candidate is checked."""
    signature = Signature(relations={"P": 1})
    guard = SigmaType([rel("P", X(1))])
    base = RegisterAutomaton(
        1, signature, {"p"}, {"p"}, {"p"}, [("p", guard, "p")]
    )
    p_block = concat(literal("p"), star(literal("p")), literal("p"))
    return ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, p_block)])


def test_streaming_validity_ablation():
    spec = manuscript_review_workflow(with_database=False)
    automaton = spec.compile()
    database = Database(Signature.empty())
    lasso = find_lasso_run(automaton, database)
    length = _prefix_length()
    prefix = lasso.unfold(length)
    wire = [tuple(guard.literals) for guard in prefix.guards]

    from repro.core.runs import FiniteRun

    def stream():
        guards = tuple(SigmaType(literals) for literals in wire)
        run = FiniteRun(prefix.data, prefix.states, guards)
        assert run.is_valid(automaton, database)

    on, off = _ablate(stream)
    _row("streaming validity (n=%d)" % length, on, off)


def test_emptiness_ablation():
    wire = _example23_wire()
    batch = _emptiness_batch()

    def decide():
        for _ in range(batch):
            assert not check_emptiness(_example23_extended(False, wire)).empty
            assert check_emptiness(
                _example23_extended(True, wire), max_prefix=2, max_cycle=4
            ).empty

    on, off = _ablate(decide)
    _row("emptiness (wire-format batch, n=%d)" % batch, on, off)


def test_parallel_lasso_grid():
    instances = [_example23_extended(True), _p_only_extended()]
    bounds = [(2, cycle) for cycle in _grid_cycles()]

    def grid():
        outcomes = []
        for extended in instances:
            for prefix_bound, cycle_bound in bounds:
                result = check_emptiness(
                    extended,
                    max_prefix=prefix_bound,
                    max_cycle=cycle_bound,
                    max_candidates=20000,
                )
                outcomes.append((result.empty, result.candidates_checked))
        return outcomes

    previous = os.environ.pop("REPRO_WORKERS", None)
    try:
        _fresh_caches()
        serial_outcomes = grid()
        serial = _median_seconds(grid)

        os.environ["REPRO_WORKERS"] = "2"
        _fresh_caches()
        parallel_outcomes = grid()  # also warms the pool
        parallel = _median_seconds(grid)
    finally:
        if previous is None:
            os.environ.pop("REPRO_WORKERS", None)
        else:
            os.environ["REPRO_WORKERS"] = previous
        shutdown_executor()

    assert parallel_outcomes == serial_outcomes  # determinism, not just verdicts
    ROWS.append(
        (
            "lasso grid (2 workers vs serial)",
            "%.4f" % parallel,
            "%.4f" % serial,
            "%.2fx" % (serial / parallel),
        )
    )


register_table(
    "E14 (PR 3): interning ablation and parallel lasso search",
    ["experiment", "interned/parallel [s]", "baseline [s]", "speedup"],
    ROWS,
)
