"""E1 -- completion blow-up (Section 2, Example 2).

The paper warns that completing an automaton costs an exponential blow-up
in the number of registers.  We measure the number of complete types
extending the empty guard as ``k`` grows (the theoretical count for the
empty relational signature is the ordered Bell-like count of settled
partitions of 2k variables), plus wall-clock time for completing a fixed
random automaton per ``k``.

Expected shape: super-exponential growth of completions with ``k``; time
follows the count.
"""

import random

import pytest

from repro import SigmaType
from repro.generators import random_register_automaton
from repro.logic.terms import x_vars, y_vars

from _tables import register_table

ROWS = []


@pytest.mark.parametrize("k", [1, 2, 3])
def test_completion_blowup(benchmark, k):
    rng = random.Random(97 + k)
    automaton = random_register_automaton(rng, k=k, n_states=2, n_transitions=3)

    def complete():
        return automaton.completed()

    completed = benchmark(complete)
    empty_completions = sum(
        1 for _ in SigmaType().completions({}, list(x_vars(k)) + list(y_vars(k)))
    )
    ROWS.append(
        (
            k,
            len(automaton.transitions),
            len(completed.transitions),
            empty_completions,
        )
    )


register_table(
    "E1: completion blow-up vs registers k",
    ["k", "|Delta| before", "|Delta| after", "completions of empty guard"],
    ROWS,
)
