"""E11 -- streaming run checking (the workflow-view use case of Section 1).

Measures the throughput of validity + constraint checking on long finite
run prefixes of the manuscript-review workflow and of its author view.
This is the "enforce the view specification in a streaming fashion" story
the paper tells after Theorem 19.

Expected shape: plain validity checking is linear in the prefix; view
constraint checking is quadratic in the prefix (factor scans), independent
of the hidden data.
"""

import pytest

from repro import Database, FiniteRun, Signature, find_lasso_run, manuscript_review_workflow, role_view

from _tables import register_table

ROWS = []


def _long_prefix(length):
    spec = manuscript_review_workflow(with_database=False)
    automaton = spec.compile()
    database = Database(Signature.empty())
    lasso = find_lasso_run(automaton, database)
    return spec, automaton, database, lasso.unfold(length)


@pytest.mark.parametrize("length", [50, 200, 800])
def test_validity_throughput(benchmark, length):
    _spec, automaton, database, prefix = _long_prefix(length)
    result = benchmark(prefix.is_valid, automaton, database)
    assert result
    ROWS.append(("validity", length, "linear scan"))


@pytest.mark.parametrize("length", [25, 50, 100])
def test_view_constraint_throughput(benchmark, length):
    spec = manuscript_review_workflow(with_database=False)
    view = role_view(spec, "author", hidden=["reviewer"])
    database = Database(Signature.empty())
    lasso = find_lasso_run(view.automaton.automaton, database, pool=("a", "b", "c", "d"))
    prefix = lasso.unfold(length)
    benchmark(view.automaton.satisfies_constraints, prefix)
    ROWS.append(("view constraints", length, "factor scans"))


register_table(
    "E11: streaming checks on the review workflow",
    ["check", "prefix length", "regime"],
    ROWS,
)
