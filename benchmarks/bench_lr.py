"""E8 -- LR-boundedness profiles (Definition 15 / Theorem 18, Examples 16-17).

Computes the cut-graph vertex-cover profiles of the paper's example
automata and reports the boundedness verdicts plus decision time.

Expected shape: Example 16's A bounded (cover 1), its trace-equivalent A'
unbounded (covers grow with the window), Example 17 unbounded; projections
of register automata bounded with cover <= k (Proposition 20).
"""

import pytest

from repro import is_lr_bounded, lr_bound_estimate, project_register_automaton
from repro.core.lr import _normalize_keep_constraints, lr_cover_profile
from repro.core.symbolic import scontrol_buchi

from _tables import register_table

ROWS = []


def _max_cover(extended, loops):
    normalised = _normalize_keep_constraints(extended)
    buchi = scontrol_buchi(normalised.automaton)
    lasso = buchi.find_accepted_lasso()
    profile = lr_cover_profile(normalised, lasso, loops=loops)
    return max(profile or [0])


def test_example16_bounded(benchmark, example7_extended):
    from repro import ExtendedAutomaton, RegisterAutomaton, SigmaType, Signature, X, Y, neq

    guard = SigmaType([neq(X(1), Y(1))])
    base = RegisterAutomaton(
        1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", guard, "q")]
    )
    extended = ExtendedAutomaton(base, [])
    verdict = benchmark(is_lr_bounded, extended)
    assert verdict
    ROWS.append(("Example 16 A (local)", "bounded", _max_cover(extended, 3), _max_cover(extended, 5)))


def test_example17_unbounded(benchmark, example7_extended):
    verdict = benchmark(is_lr_bounded, example7_extended)
    assert not verdict
    ROWS.append(
        (
            "Example 17 (all distinct)",
            "unbounded",
            _max_cover(example7_extended, 3),
            _max_cover(example7_extended, 5),
        )
    )


def test_projection_bound(benchmark, example1_automaton):
    projected = project_register_automaton(example1_automaton, 1)
    estimate = benchmark(lambda: lr_bound_estimate(projected, max_cycle=3))
    assert estimate <= example1_automaton.k
    ROWS.append(("Example 1 projection", "bounded (Prop 20)", estimate, estimate))


register_table(
    "E8: LR cut-graph covers (window 3 vs 5 loops)",
    ["instance", "verdict", "max cover @3", "max cover @5"],
    ROWS,
)
