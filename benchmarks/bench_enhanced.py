"""E10 -- Section 6: hiding the database (Theorem 24, Example 23).

Builds the database-hidden view of Example 23 (binary and ternary E) and
measures construction time and the resulting constraint inventory, plus the
throughput of enhanced-constraint checking on lasso runs.

Expected shape: binary variant yields monadic inequality constraints
enforcing even/odd value disjointness; the ternary variant yields arity-2
tuple constraints; finiteness constraints appear for the register forced
into the active domain.
"""

import pytest

from repro import (
    LassoRun,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    nrel,
    project_with_database,
    rel,
)
from repro.logic.types import project_type_dataless

from _tables import register_table

ROWS = []


def _example23(binary: bool) -> RegisterAutomaton:
    if binary:
        signature = Signature(relations={"E": 2, "U": 1})
        pos = rel("E", X(2), X(1))
        neg = nrel("E", X(2), X(1))
    else:
        signature = Signature(relations={"E": 3, "U": 1})
        pos = rel("E", X(1), X(2), Y(1))
        neg = nrel("E", X(1), X(2), Y(1))
    delta = SigmaType([eq(X(2), Y(2)), rel("U", X(1)), pos])
    delta_neg = SigmaType([eq(X(2), Y(2)), rel("U", X(1)), neg])
    return RegisterAutomaton(
        2,
        signature,
        {"p", "q"},
        {"p"},
        {"p"},
        [("p", delta, "q"), ("q", delta_neg, "p")],
    )


@pytest.mark.parametrize("variant", ["binary", "ternary"])
def test_theorem24_construction(benchmark, variant):
    automaton = _example23(variant == "binary")
    view = benchmark(project_with_database, automaton, 1)
    ROWS.append(
        (
            "Example 23 %s" % variant,
            len(view.equality_constraints),
            len(view.tuple_constraints),
            len(view.finiteness_constraints),
            max((c.arity for c in view.tuple_constraints), default=0),
        )
    )


def test_constraint_checking_throughput(benchmark):
    """Exact lasso checking of the enhanced constraints."""
    automaton = _example23(True)
    view = project_with_database(automaton, 1)
    from repro.core.theorem24 import _normalize_db

    normalised = _normalize_db(automaton)
    # build a structurally consistent alternating lasso run of the view
    states = sorted(normalised.states, key=repr)
    p_state = next(s for s in states if s[0] == "p" and s in normalised.initial)
    # follow transitions to a q state and back
    q_state = normalised.transitions_from(p_state)[0].target
    back = normalised.transitions_from(q_state)[0].target
    run = LassoRun(
        data=(("u",), ("v",)),
        states=(p_state, q_state),
        guards=(
            project_type_dataless(normalised.guard_of_state(p_state), 1),
            project_type_dataless(normalised.guard_of_state(q_state), 1),
        ),
        loop_start=0,
    )

    def check():
        return view.constraint_violation(run)

    benchmark(check)
    ROWS.append(("lasso check (binary)", "-", "-", "-", "-"))


register_table(
    "E10: Theorem 24 constructions",
    ["instance", "eq", "tuple", "finiteness", "max tuple arity"],
    ROWS,
)
