"""E9 -- the Proposition 22 register budget.

The paper bounds the registers needed to realise an LR-bounded extended
automaton as a projection by ``2 M^2 + 1`` where ``M = N + 1`` and ``N`` is
the LR bound.  We synthesise automata for growing bank budgets and measure
(a) construction size and (b) the smallest budget at which the synthesis
becomes complete on bounded prefixes (the paper's bound is a worst case;
small instances saturate much earlier).

Expected shape: soundness at every budget; completeness from budget 1 for
the LR-bound-1 instance; sizes grow combinatorially with the banks.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))

from repro import (
    Database,
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    generate_finite_runs,
    synthesize_register_automaton,
)
from repro.automata.regex import concat, literal
from tests.helpers import canonical_trace

from _tables import register_table

ROWS = []

EMPTY = SigmaType()


def _alternating():
    base = RegisterAutomaton(
        1,
        Signature.empty(),
        {"p", "q"},
        {"p"},
        {"p"},
        [("p", EMPTY, "q"), ("q", EMPTY, "p")],
    )
    return ExtendedAutomaton(
        base, [GlobalConstraint("neq", 1, 1, concat(literal("p"), literal("q")))]
    )


def _trace_sets(extended, synthesized, length=4):
    database = Database(Signature.empty())
    pool = ("a", "b", "c")
    constrained = {
        canonical_trace(run.data)
        for run in generate_finite_runs(extended.automaton, database, length, pool=pool)
        if extended.satisfies_constraints(run)
    }
    projected = {
        canonical_trace(tuple(row[:1] for row in run.data))
        for run in generate_finite_runs(synthesized, database, length, pool=pool)
    }
    return constrained, projected


@pytest.mark.parametrize("budget", [0, 1])
def test_budget_sweep(benchmark, budget):
    extended = _alternating()
    synthesized = benchmark.pedantic(
        synthesize_register_automaton, args=(extended, budget, budget),
        rounds=1, iterations=1,
    )
    constrained, projected = _trace_sets(extended, synthesized)
    sound = projected <= constrained
    complete = constrained <= projected
    assert sound  # soundness holds at every budget
    ROWS.append(
        (
            budget,
            synthesized.k,
            len(synthesized.states),
            len(synthesized.transitions),
            "yes" if complete else "no",
        )
    )
    if budget >= 1:
        assert complete


def test_budget_two_construction_size(benchmark):
    """Budget 2 synthesis: construction size only (the trace comparison
    over a 5-register automaton is enumeration-heavy and adds nothing --
    completeness is already reached at budget 1 for this LR bound)."""
    extended = _alternating()
    synthesized = benchmark.pedantic(
        synthesize_register_automaton, args=(extended, 2, 1),
        rounds=1, iterations=1,
    )
    ROWS.append(
        (
            "2/1",
            synthesized.k,
            len(synthesized.states),
            len(synthesized.transitions),
            "(size only)",
        )
    )


register_table(
    "E9: Proposition 22 budget sweep (alternating, LR bound 1)",
    ["bank budget", "registers", "states", "transitions", "complete?"],
    ROWS,
)
