"""E7 -- projection of register automata (Theorem 13 / Lemma 21).

Sweeps the register count of random automata, projects onto one register
and reports the sizes of the Lemma 21 tracker DFAs plus construction time;
also validates the projection against brute-force prefix enumeration on the
smaller instances.

Expected shape: tracker sizes grow with ``2^k`` (the subset construction
over registers) times the control size; exactness holds on every validated
instance.
"""

import random

import pytest

from repro import project_register_automaton
from repro.generators import random_register_automaton

from _tables import register_table

ROWS = []


@pytest.mark.parametrize("k", [1, 2])
def test_projection_sizes(benchmark, k):
    # The sweep stops at k = 2: completion of a loose 3-register guard
    # already yields Bell(6) = 203 complete types, i.e. a ~170-state
    # normalised control whose tracker construction takes minutes -- the
    # paper's exponential made tangible.  E1 quantifies that growth; here
    # we measure the tractable regime.
    rng = random.Random(300 + k)
    automaton = random_register_automaton(rng, k=k, n_states=2, n_transitions=3)
    projected = benchmark.pedantic(
        project_register_automaton, args=(automaton, 1), rounds=1, iterations=1
    )
    dfa_sizes = [
        projected.constraint_dfa(c).size() for c in projected.constraints
    ]
    ROWS.append(
        (
            k,
            len(projected.automaton.states),
            len(projected.constraints),
            max(dfa_sizes) if dfa_sizes else 0,
        )
    )


def test_projection_exactness(benchmark):
    """Round-trip validation against brute force (pooled enumeration)."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent.parent))
    from tests.helpers import projection_prefix_sets

    rng = random.Random(7)
    automaton = random_register_automaton(rng, k=2, n_states=2, n_transitions=3)
    projected = project_register_automaton(automaton, 1)

    def check():
        original, image = projection_prefix_sets(automaton, projected, 1, length=3)
        return original == image, len(original)

    exact, count = benchmark.pedantic(check, rounds=1, iterations=1)
    assert exact
    ROWS.append(("exactness", count, "traces", "exact"))


register_table(
    "E7: projection construction (Lemma 21)",
    ["k", "view states", "constraints", "largest tracker DFA"],
    ROWS,
)
