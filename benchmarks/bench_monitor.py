"""E20 -- monitor multiplexer throughput and crash-recovery cost.

Two questions.  First, what does the crash-surviving machinery (write-
ahead journal, periodic durable snapshots) cost per event: the table
reports sessions advanced per second and the p99 single-``ingest``
latency at two population sizes (1k and 10k live sessions; quick mode
shrinks both).  Second, what a recovery costs relative to the clean run
-- and, non-negotiably, that recovery is *invisible* in the verdicts:
the per-session ``(state, position, failed, peak_threads)`` fingerprints
under an injected driver crash (``monitor.ingest:crash``) and under a
real worker crash (``parallel.call_chunk:exit``) are asserted equal to
the fault-free serial run, in-bench, before any timing is trusted.

Timings use ``time.perf_counter`` (never ``time.time`` -- lint rule
TIME001); medians over several repeats to shrug off scheduler noise.
"""

import os
import statistics
import time

from repro import (
    Database,
    ExtendedAutomaton,
    GlobalConstraint,
    MonitorMultiplexer,
    RegisterAutomaton,
    SigmaType,
    Signature,
)
from repro.automata.regex import concat, literal, plus
from repro.core.parallel import shutdown_executor
from repro.foundations.faults import reset_faults
from repro.foundations.resilience import drain_events

from _tables import register_table

THROUGHPUT_ROWS = []
RECOVERY_ROWS = []


def _quick() -> bool:
    """Read at call time (ENV001) so CI flips it without reimports."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _scales():
    """Live-session population sizes for the throughput sweep."""
    return [100, 1000] if _quick() else [1000, 10000]


def _batch_count():
    """Ingest batches per sweep (one event per session per batch)."""
    return 6 if _quick() else 12


def _spec() -> ExtendedAutomaton:
    """One register, one state, all values pairwise distinct (Example 7)."""
    base = RegisterAutomaton(
        1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", SigmaType(), "q")]
    )
    all_distinct = concat(literal("q"), plus(literal("q")))
    return ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, all_distinct)])


def _batch(n_sessions, batch_index):
    """One event per session; values distinct per position, so no violations."""
    value = "v%d" % batch_index
    return [("s%d" % i, "q", (value,)) for i in range(n_sessions)]


def _median_seconds(fn, repeats=3):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _p99(latencies):
    ranked = sorted(latencies)
    return ranked[min(len(ranked) - 1, int(0.99 * len(ranked)))]


def _drive(mux, n_sessions, batches):
    """Feed the whole sweep; return per-ingest latencies (seconds)."""
    latencies = []
    for index in range(batches):
        events = _batch(n_sessions, index)
        start = time.perf_counter()
        report = mux.ingest(events)
        latencies.append(time.perf_counter() - start)
        assert report.applied == n_sessions
        assert not report.violations
    return latencies


def test_throughput(benchmark, monkeypatch):
    """Sessions/sec and p99 ingest latency across the population sweep."""
    monkeypatch.setenv("REPRO_FAULTS", "")
    reset_faults()
    extended = _spec()
    database = Database(Signature.empty())

    batches = _batch_count()

    def sweep():
        for n_sessions in _scales():
            mux = MonitorMultiplexer(
                extended,
                database,
                shards=1,
                snapshot_every=8,
                journal_cap=4 * n_sessions,
            )
            latencies = _drive(mux, n_sessions, batches)
            total = sum(latencies)
            events = n_sessions * batches
            stats = mux.stats()
            assert stats["events_applied"] == events
            assert stats["quarantined"] == 0
            # journal stays bounded by the cap (plus one in-flight batch)
            assert stats["journal_len"] <= 4 * n_sessions + n_sessions
            THROUGHPUT_ROWS.append(
                (
                    "%d sessions" % n_sessions,
                    "%d" % events,
                    "%.0f" % (events / total),
                    "%.1f ms" % (_p99(latencies) * 1e3),
                )
            )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(THROUGHPUT_ROWS) == len(_scales())


def test_crash_recovery_identity(benchmark, monkeypatch):
    """Recovery is invisible in the fingerprints, and affordable in time."""
    n_sessions = 64 if _quick() else 256
    batches = 6
    extended = _spec()
    database = Database(Signature.empty())

    def run(shards):
        mux = MonitorMultiplexer(
            extended, database, shards=shards, snapshot_every=4
        )
        _drive(mux, n_sessions, batches)
        return mux

    monkeypatch.setenv("REPRO_FAULTS", "")
    reset_faults()
    baseline = run(shards=1)
    expected = baseline.fingerprints()
    clean_median = _median_seconds(lambda: run(shards=1))

    # Leg A: driver volatile-state loss mid-ingest, recovered from the
    # journal + durable snapshots.  Identity first, then the timing.
    monkeypatch.setenv("REPRO_FAULTS", "monitor.ingest:crash:2")

    def crashed():
        reset_faults()
        drain_events()
        return run(shards=1)

    recovered = crashed()
    assert recovered.fingerprints() == expected
    assert recovered.stats()["recoveries"] == 1
    crashed_median = benchmark.pedantic(
        lambda: _median_seconds(crashed), rounds=1, iterations=1
    )
    RECOVERY_ROWS.append(
        (
            "driver crash (monitor.ingest:crash), %d sessions" % n_sessions,
            "%.1f ms" % (clean_median * 1e3),
            "%.1f ms" % (crashed_median * 1e3),
            "fingerprints identical",
        )
    )

    # Leg B: a real worker process dies mid-batch; the resilient pool
    # resubmits the chunk and the verdicts still match the serial run.
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_POOL_BACKOFF_MS", "0")
    monkeypatch.setenv("REPRO_FAULTS", "parallel.call_chunk:exit:1")
    try:

        def pool_crashed():
            shutdown_executor()
            reset_faults()
            drain_events()
            return run(shards=4)

        sharded = pool_crashed()
        assert sharded.fingerprints() == expected
        pool_median = _median_seconds(pool_crashed)
    finally:
        monkeypatch.setenv("REPRO_FAULTS", "")
        reset_faults()
        shutdown_executor()
    RECOVERY_ROWS.append(
        (
            "worker crash (parallel.call_chunk:exit), %d sessions" % n_sessions,
            "%.1f ms" % (clean_median * 1e3),
            "%.1f ms" % (pool_median * 1e3),
            "fingerprints identical",
        )
    )
    # Recovery must stay the same order of magnitude, never hang.
    assert crashed_median < clean_median * 200 + 5.0
    assert pool_median < clean_median * 500 + 10.0


register_table(
    "E20: monitor multiplexer throughput (one event/session/batch)",
    ["live sessions", "events", "sessions/sec", "p99 ingest"],
    THROUGHPUT_ROWS,
)

register_table(
    "E20: monitor crash recovery (medians of 3)",
    ["scenario", "clean", "faulted", "identity"],
    RECOVERY_ROWS,
)
