"""E19 (PR 8) -- code-based normalisation kernel vs the Bell(2k) literal wall.

The emptiness pipeline's normalisation step (``completed()`` +
``state_driven()``) materialises one :class:`~repro.logic.types.SigmaType`
per guard completion -- Bell(2k) of them per incomplete guard -- before the
Buchi product is even built.  The symbolic kernel (``REPRO_SYMKERNEL``,
``repro.core.symkernel``) enumerates the same completions as partition
*codes* and runs the product over integer ids, decoding literals only for
the winning witness.

Rows recorded in the session table (and hence ``BENCH_8.json``):

* **end-to-end emptiness A/B over a register grid**: a sparse two-state
  chain automaton at k = 4 and 5 whose guards settle one x-chain and leave
  the remaining pairs open -- tens to hundreds of completions per guard,
  the completion-heavy regime the kernel targets while the legacy path
  still finishes in seconds.  Both modes run from cold caches; the verdict,
  the witness trace (by ``==`` and by ``repr``) and ``candidates_checked``
  are asserted byte-identical, and the speedup at k >= 4 must clear the
  5x acceptance bar (measured runs land orders of magnitude above it).
* **constrained emptiness at k = 4**: the same chain under an all-distinct
  inequality constraint, so the coded corridor trackers (narrowing +
  per-candidate consistency) are in the measured path, not just the
  product construction.

The ``SigmaType objects`` column is the materialisation counter: the
intern-table miss delta (``cache_stats("intern.SigmaType")``) across each
leg counts distinct guard/completion objects actually constructed.  The
in-bench assertion requires the kernel leg to construct at least 5x fewer
than the legacy leg -- the point of the representation, asserted, not
implied.  (The counter only ticks while interning is on, so the assertion
is gated on ``interning_enabled()``; the ``REPRO_INTERN=0`` ablation still
runs the timing rows.)

Between A/B modes every shared cache is cleared, so neither mode serves
entries computed by the other.  Quick mode (``REPRO_BENCH_QUICK=1``)
drops the k = 5 row and shrinks the repeat count; all knobs are read at
call time (ENV001).
"""

import gc
import os
import statistics
import time

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    check_emptiness,
    eq,
    neq,
)
from repro.automata.regex import any_of, concat, plus
from repro.core.caching import cache_stats, clear_value_caches
from repro.foundations.interning import clear_intern_tables, interning_enabled
from repro.logic.terms import x_vars, y_vars
from repro.logic.types import enumerate_completion_codes

from _tables import register_table

SPEEDUP_BAR = 5.0
MATERIALISATION_BAR = 5.0

ROWS_GRID = []
ROWS_CONSTRAINED = []


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _repeats():
    return 2 if _quick() else 3


def _grid():
    """(k, settled chain length) pairs; both modes finish in seconds."""
    return ((4, 1),) if _quick() else ((4, 1), (5, 2))


def _median_seconds(fn, repeats=None):
    if repeats is None:
        repeats = _repeats()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _fresh_caches():
    clear_value_caches()
    clear_intern_tables()
    gc.collect()


class _kernel_mode:
    """Pin ``REPRO_SYMKERNEL`` for one A/B leg (restores on exit)."""

    def __init__(self, enabled):
        self.value = "1" if enabled else "0"

    def __enter__(self):
        self.previous = os.environ.get("REPRO_SYMKERNEL")
        os.environ["REPRO_SYMKERNEL"] = self.value

    def __exit__(self, *exc_info):
        if self.previous is None:
            os.environ.pop("REPRO_SYMKERNEL", None)
        else:
            os.environ["REPRO_SYMKERNEL"] = self.previous


# ---------------------------------------------------------------------- #
# workload
# ---------------------------------------------------------------------- #

EMPTY_SIG = Signature.empty()


def _chain_automaton(k, settled):
    """A two-state chain whose guards leave most register pairs open.

    Both guards settle an equality chain over the first ``settled + 1``
    registers (and their successors) plus one cross pair; everything else
    is open, so each guard completes to tens or hundreds of partition
    codes -- completion-heavy, yet sparse enough that the legacy product
    still finishes.
    """
    lits = [eq(X(i), X(i + 1)) for i in range(1, settled + 1)]
    lits += [eq(Y(i), Y(i + 1)) for i in range(1, settled + 1)]
    forward = SigmaType(lits + [eq(X(1), Y(k))])
    backward = SigmaType(lits + [neq(X(1), Y(1))])
    return RegisterAutomaton(
        k,
        EMPTY_SIG,
        {"a", "b"},
        {"a"},
        {"a"},
        [("a", forward, "b"), ("b", backward, "a")],
    )


def _completions_per_guard(automaton):
    vocab = tuple(x_vars(automaton.k)) + tuple(y_vars(automaton.k))
    return [
        len(enumerate_completion_codes(transition.guard, vocab))
        for transition in automaton.transitions
    ]


def _all_distinct_constraint():
    anyc = any_of(["a", "b"])
    return GlobalConstraint("neq", 1, 1, concat(anyc, plus(anyc)))


# ---------------------------------------------------------------------- #
# measurement
# ---------------------------------------------------------------------- #


def _run_leg(extended, enabled, **bounds):
    """One cold-cache leg: (result, median seconds, SigmaTypes built)."""
    with _kernel_mode(enabled):
        _fresh_caches()
        stats = cache_stats("intern.SigmaType")
        before = stats.misses
        result = check_emptiness(extended, **bounds)
        materialised = stats.misses - before
        seconds = _median_seconds(lambda: check_emptiness(extended, **bounds))
    _fresh_caches()
    return result, seconds, materialised


def _fingerprint(result):
    witness = result.witness
    return (
        result.empty,
        result.exact,
        result.candidates_checked,
        None if witness is None else witness.trace,
        None if witness is None else repr(witness.trace),
    )


def _ab(extended, **bounds):
    kernel = _run_leg(extended, True, **bounds)
    legacy = _run_leg(extended, False, **bounds)
    # Byte-identity is part of the experiment, not just the test suite.
    assert _fingerprint(kernel[0]) == _fingerprint(legacy[0])
    if interning_enabled():
        assert legacy[2] >= MATERIALISATION_BAR * max(kernel[2], 1)
    return kernel, legacy


# ---------------------------------------------------------------------- #
# experiments
# ---------------------------------------------------------------------- #


def test_emptiness_ab_over_register_grid():
    for k, settled in _grid():
        automaton = _chain_automaton(k, settled)
        extended = ExtendedAutomaton(automaton, [])
        per_guard = _completions_per_guard(automaton)
        (kernel_result, kernel_time, kernel_objects), (
            _,
            legacy_time,
            legacy_objects,
        ) = _ab(extended)
        assert not kernel_result.empty
        speedup = legacy_time / kernel_time
        # The acceptance bar: >= 5x end-to-end at k >= 4.
        assert speedup >= SPEEDUP_BAR
        ROWS_GRID.append(
            (
                "k=%d" % k,
                "/".join(str(n) for n in per_guard),
                "%.4f" % kernel_time,
                "%.4f" % legacy_time,
                "%.1fx" % speedup,
                "%d/%d" % (kernel_objects, legacy_objects),
            )
        )


def test_constrained_emptiness_ab():
    k, settled = 4, 1
    automaton = _chain_automaton(k, settled)
    extended = ExtendedAutomaton(automaton, [_all_distinct_constraint()])
    bounds = dict(max_prefix=1, max_cycle=2, max_candidates=50)
    (kernel_result, kernel_time, kernel_objects), (
        legacy_result,
        legacy_time,
        legacy_objects,
    ) = _ab(extended, **bounds)
    assert not kernel_result.empty
    speedup = legacy_time / kernel_time
    assert speedup >= SPEEDUP_BAR
    ROWS_CONSTRAINED.append(
        (
            "all-distinct chain (k=%d)" % k,
            "%.4f" % kernel_time,
            "%.4f" % legacy_time,
            "%.1fx" % speedup,
            "%d/%d"
            % (
                kernel_result.candidates_checked,
                legacy_result.candidates_checked,
            ),
            "%d/%d" % (kernel_objects, legacy_objects),
        )
    )


register_table(
    "E19 (PR 8): symbolic kernel vs literal normalisation (unconstrained)",
    [
        "registers",
        "completions/guard",
        "kernel [s]",
        "legacy [s]",
        "speedup",
        "SigmaType objects k/l",
    ],
    ROWS_GRID,
)

register_table(
    "E19 (PR 8): symbolic kernel under inequality constraints",
    [
        "experiment",
        "kernel [s]",
        "legacy [s]",
        "speedup",
        "candidates k/l",
        "SigmaType objects k/l",
    ],
    ROWS_CONSTRAINED,
)
