"""E12 -- the paper's worked examples as an end-to-end regression gauntlet.

Times the full pipeline on each worked example: Example 1 (the running
automaton), Example 4/5 (non-closure and the extended-automaton view),
Example 7 (all distinct), Example 8 (quasi-regularity boundary), Examples
16/17 (LR boundary).  Doubles as the "who wins" summary table.

Expected shape: every verdict matches the paper's claim.
"""

import pytest

from repro import (
    ExtendedAutomaton,
    check_emptiness,
    is_lr_bounded,
    project_register_automaton,
    scontrol_buchi,
)

from _tables import register_table

ROWS = []


def test_example1_scontrol(benchmark, example1_automaton):
    buchi = benchmark(scontrol_buchi, example1_automaton)
    assert buchi.find_accepted_lasso() is not None
    ROWS.append(("Ex 1: SControl nonempty", "yes (omega-regular)", "paper: yes"))


def test_example4_projection(benchmark, example1_automaton):
    projected = benchmark(project_register_automaton, example1_automaton, 1)
    assert projected.constraints
    ROWS.append(
        ("Ex 4/5: projection needs global constraints", "yes", "paper: yes")
    )


def test_example7_nonempty_but_aperiodic(benchmark, example7_extended):
    result = benchmark(check_emptiness, example7_extended)
    assert not result.empty
    assert result.witness.lasso_run() is None
    ROWS.append(
        ("Ex 7: runs exist, none data-periodic", "confirmed", "paper: yes")
    )


def test_example8_boundary(benchmark, example8_extended):
    result = benchmark(
        lambda: check_emptiness(example8_extended, max_prefix=1, max_cycle=4)
    )
    assert not result.empty
    ROWS.append(("Ex 8: p-blocks with breaks realisable", "yes", "paper: yes"))


def test_example16_17_lr(benchmark, example7_extended):
    verdict = benchmark(is_lr_bounded, example7_extended)
    assert not verdict
    ROWS.append(("Ex 17: all-distinct not LR-bounded", "confirmed", "paper: yes"))


register_table(
    "E12: worked-example gauntlet",
    ["claim", "measured", "expected"],
    ROWS,
)
