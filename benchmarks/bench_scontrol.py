"""E3 -- Control(A) = SControl(A) ([19], re-proved in Theorem 9 stage 1).

For random register automata we (a) build the Buchi automaton for
``SControl(A)``, (b) sample accepted symbolic lassos and (c) realise every
sample as a concrete database + run.  The paper's theorem predicts a 100%
realisation rate; the bench reports rates and the witness-construction time.

Expected shape: every sampled symbolic trace realisable, across ``k`` and
database/no-database settings.
"""

import random

import pytest

from repro import Signature
from repro.core.symbolic import realize_control_trace, scontrol_buchi
from repro.generators import random_register_automaton

from _tables import register_table

ROWS = []


def _sample_and_realize(automaton, limit=8):
    # Control = SControl is a theorem about *complete* automata (see the
    # docstring of control_equals_scontrol_on_samples).
    if not automaton.is_complete():
        automaton = automaton.completed()
    buchi = scontrol_buchi(automaton)
    realized = 0
    sampled = 0
    seen = set()
    for lasso in buchi.iter_accepted_lassos(3, 1):
        if lasso in seen:
            continue
        seen.add(lasso)
        sampled += 1
        realize_control_trace(automaton, lasso, check_membership=False)
        realized += 1
        if sampled >= limit:
            break
    return sampled, realized


@pytest.mark.parametrize("k", [1, 2])
def test_realization_no_database(benchmark, k):
    rng = random.Random(50 + k)
    automaton = random_register_automaton(rng, k=k, n_states=2, n_transitions=3)
    sampled, realized = benchmark(_sample_and_realize, automaton)
    ROWS.append(("no db, k=%d" % k, sampled, realized))
    assert sampled == realized


def test_realization_with_database(benchmark):
    rng = random.Random(99)
    signature = Signature(relations={"P": 1})
    automaton = random_register_automaton(
        rng, k=1, n_states=2, n_transitions=3, signature=signature
    )
    sampled, realized = benchmark(_sample_and_realize, automaton, 5)
    ROWS.append(("P/1 db, k=1", sampled, realized))
    assert sampled == realized


register_table(
    "E3: symbolic lassos realised (Control = SControl)",
    ["setting", "sampled", "realised"],
    ROWS,
)
