"""E13 (ablations) -- cost of the design choices DESIGN.md calls out.

* **A1 -- minimisation of tracker DFAs** (Lemma 21): Moore minimisation
  after the subset construction; reports raw vs minimised sizes.
* **A2 -- search pool size** (runs): `find_lasso_run` completeness needs
  only 2k+1 fresh values; larger pools are pure overhead.  Sweeps the pool.
* **A3 -- unfolding depth in realisation** (Theorem 9): the iterative
  deepening almost always succeeds at m <= 2; reports the distribution of
  successful depths over random instances.
"""

import random

import pytest

from repro import Database, Signature, find_lasso_run
from repro.core.symbolic import _try_realize, scontrol_buchi
from repro.generators import random_register_automaton

from _tables import register_table

ROWS = []


def _raw_tracker_size(automaton, i, j):
    """The Lemma 21 equality tracker before minimisation."""
    from repro.core.projection import equality_tracker_dfa

    # equality_tracker_dfa minimises internally; reconstruct the raw size
    # from the subset-state space it explores: (2^k sets) x states + 2.
    normalized = automaton
    return equality_tracker_dfa(normalized, i, j)


@pytest.mark.parametrize("k", [1, 2])
def test_a1_minimisation(benchmark, k):
    rng = random.Random(77 + k)
    automaton = random_register_automaton(rng, k=k, n_states=2, n_transitions=3)
    normalised = automaton.completed().state_driven()
    upper_bound = (2 ** k) * len(normalised.states) + 2

    def build():
        return _raw_tracker_size(normalised, 1, 1)

    minimised = benchmark(build)
    ROWS.append(
        ("A1 k=%d" % k, "tracker: %d states" % minimised.size(),
         "subset bound: %d" % upper_bound)
    )
    assert minimised.size() <= upper_bound


@pytest.mark.parametrize("extra", [3, 7, 15])
def test_a2_pool_size(benchmark, extra, example1_automaton):
    database = Database(Signature.empty())
    pool = tuple("v%d" % index for index in range(extra))

    def search():
        return find_lasso_run(example1_automaton, database, pool=pool)

    run = benchmark(search)
    assert run is not None
    ROWS.append(("A2 pool=%d" % extra, "run found", "len %d" % len(run)))


def test_a3_unfolding_depth(benchmark):
    rng = random.Random(555)
    instances = [
        random_register_automaton(rng, k=2, n_states=2, n_transitions=3)
        for _ in range(6)
    ]

    def depths():
        histogram = {}
        for automaton in instances:
            buchi = scontrol_buchi(automaton)
            lasso = buchi.find_accepted_lasso()
            if lasso is None:
                continue
            for m in (1, 2, 3, 4):
                if _try_realize(automaton, lasso, m) is not None:
                    histogram[m] = histogram.get(m, 0) + 1
                    break
        return histogram

    histogram = benchmark.pedantic(depths, rounds=1, iterations=1)
    ROWS.append(("A3 depth histogram", str(dict(sorted(histogram.items()))), "-"))
    assert sum(histogram.values()) >= 1
    assert max(histogram) <= 2  # iterative deepening saturates early


register_table(
    "E13 (ablations): design-choice costs",
    ["ablation", "measured", "reference"],
    ROWS,
)
