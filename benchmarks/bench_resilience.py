"""E16 -- cost of the resilient execution layer.

The deadline checkpoints run on every consumed lasso candidate, every
completion search node and every Theorem 24 literal pair, so the first
question is whether an armed-but-generous deadline slows the hot paths
measurably.  Target: < 3% median overhead on the Example 2/3 emptiness
sweep (the hard assertion is deliberately looser -- CI machines are
noisy -- but the table reports the honest number).

The second question is what a worker crash costs: the respawn + serial
fallback must recover in the same order of magnitude as the clean run,
not hang or thrash.

Timings use ``time.perf_counter`` (never ``time.time`` -- lint rule
TIME001); medians over several repeats to shrug off scheduler noise.
"""

import statistics
import time

from repro import Deadline, ExtendedAutomaton, GlobalConstraint, check_emptiness
from repro.core.parallel import parallel_map, shutdown_executor
from repro.foundations.faults import reset_faults
from repro.foundations.resilience import drain_events

from _tables import register_table

ROWS = []

REPEATS = 7
BOUNDS = dict(max_prefix=2, max_cycle=5)


def _example23():
    from repro import RegisterAutomaton, SigmaType, Signature, X, Y, eq
    from repro.automata.regex import concat, literal, plus

    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    base = RegisterAutomaton(
        2,
        Signature.empty(),
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )
    factor = concat(literal("q1"), plus(literal("q2")), literal("q1"))
    return ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, factor)])


def _median_seconds(fn, repeats=REPEATS):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _fingerprint(result):
    witness = result.witness
    return (
        result.empty,
        result.exact,
        result.candidates_checked,
        None if witness is None else witness.trace,
    )


def test_deadline_overhead(benchmark):
    """Armed-but-generous deadline vs no deadline on the emptiness sweep."""
    extended = _example23()
    generous = Deadline(3600)

    def bare():
        return check_emptiness(extended, **BOUNDS)

    def timed():
        return check_emptiness(extended, deadline=generous, **BOUNDS)

    # identical answers first -- the ablation is meaningless otherwise
    assert _fingerprint(bare()) == _fingerprint(timed())

    bare_median = _median_seconds(bare)
    timed_median = benchmark.pedantic(
        lambda: _median_seconds(timed), rounds=1, iterations=1
    )
    overhead = (timed_median - bare_median) / bare_median * 100.0
    ROWS.append(
        (
            "deadline checkpoints",
            "%.1f ms" % (bare_median * 1e3),
            "%.1f ms" % (timed_median * 1e3),
            "%+.1f%%" % overhead,
        )
    )
    # Lenient hard bound (the target is 3%; CI boxes jitter far above
    # what the checkpoints themselves could ever cost).
    assert overhead < 50.0


def test_crash_recovery_cost(benchmark, monkeypatch):
    """Worker crash -> respawn -> serial fallback, vs the clean serial run."""
    items = list(range(192))

    def clean():
        return parallel_map(_work, items, chunk_size=8)

    expected = clean()
    clean_median = _median_seconds(clean, repeats=3)

    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_POOL_BACKOFF_MS", "0")
    monkeypatch.setenv("REPRO_FAULTS", "parallel.call_chunk:exit:1")
    reset_faults()

    def crashed():
        shutdown_executor()
        reset_faults()
        drain_events()
        return parallel_map(_work, items, chunk_size=8)

    assert crashed() == expected  # bit-identical through the recovery
    crashed_median = benchmark.pedantic(
        lambda: _median_seconds(crashed, repeats=3), rounds=1, iterations=1
    )
    monkeypatch.delenv("REPRO_FAULTS")
    reset_faults()
    shutdown_executor()
    ROWS.append(
        (
            "crash recovery",
            "%.1f ms" % (clean_median * 1e3),
            "%.1f ms" % (crashed_median * 1e3),
            "%+.1fx" % (crashed_median / clean_median),
        )
    )
    # Recovery must stay the same order of magnitude, never hang.
    assert crashed_median < clean_median * 200 + 5.0


def _work(n):
    return sum(i * i for i in range(200 + (n % 7)))


register_table(
    "E16: resilience overhead (medians of %d)" % REPEATS,
    ["scenario", "baseline", "resilient", "delta"],
    ROWS,
)
