"""E17 (PR 6) -- antichain partition-code domain vs the explicit Bell(k) powerset.

Two experiments, recorded as rows in the session table (and hence in
``BENCH_6.json``):

* **dataflow fixpoint A/B over a register grid**: the reachable-types
  analysis on a mesh automaton whose guards each mention two registers --
  the shape the sigma-reduction was built for.  For every k where the
  explicit domain still runs (k <= 6) both modes are timed and their
  results asserted identical (per-state type sets, feasibility verdicts);
  above that the antichain rows run alone, which is the point -- the
  explicit domain cannot.  The ``elements`` column counts stored domain
  elements (types vs intervals) and ``reduction`` the ratio between the
  types an antichain *represents* (its downward closure, via
  :func:`repro.logic.types.interval_size`) and the intervals it *stores*;
  the in-bench assertion requires the reduction to stay
  Bell(k)-proportional from k = 5 up, i.e. the win is superlinear in the
  domain size, not a constant factor.
* **emptiness + pruning at k = 8**: the constrained-emptiness pipeline on
  an eight-register automaton with complete guards and a dead junk
  subgraph.  Under ``REPRO_ANTICHAIN=1`` the dataflow proves the junk
  dead and the pruner removes it before normalisation; under ``=0`` the
  analysis declines (k = 8 is over the explicit cap) and the pipeline
  gracefully walks the junk.  The verdict and the winning witness must be
  byte-identical either way.

Between A/B modes every shared cache is cleared, so neither mode serves
entries computed by the other.  Quick mode (``REPRO_BENCH_QUICK=1``)
shrinks the register grid and the repeat count; all knobs are read at
call time (ENV001).
"""

import gc
import os
import statistics
import time

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    check_emptiness,
    eq,
    neq,
)
from repro.analysis.dataflow import (
    EXPLICIT_MAX_REGISTERS,
    reachable_types_outcome,
)
from repro.automata.regex import concat, literal
from repro.core.caching import clear_value_caches
from repro.foundations.interning import clear_intern_tables
from repro.logic import types as types_module
from repro.logic.types import interval_size

from _tables import register_table

#: Bell numbers B(1)..B(10): the explicit domain sizes the antichain dodges.
BELL = (1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975)


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _repeats():
    return 3 if _quick() else 5


def _ab_grid():
    """Register counts where both modes run (explicit cap permitting)."""
    return (2, 3, 4, 5) if _quick() else (2, 3, 4, 5, 6)


def _antichain_grid():
    """Register counts only the antichain domain can handle."""
    return (8,) if _quick() else (7, 8, 10)


ROWS_FIXPOINT = []
ROWS_EMPTINESS = []


def _median_seconds(fn, repeats=None):
    if repeats is None:
        repeats = _repeats()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _fresh_caches():
    clear_value_caches()
    clear_intern_tables()
    gc.collect()


class _antichain_mode:
    """Pin ``REPRO_ANTICHAIN`` for one A/B leg (restores on exit)."""

    def __init__(self, enabled):
        self.value = "1" if enabled else "0"

    def __enter__(self):
        self.previous = os.environ.get("REPRO_ANTICHAIN")
        os.environ["REPRO_ANTICHAIN"] = self.value

    def __exit__(self, *exc_info):
        if self.previous is None:
            os.environ.pop("REPRO_ANTICHAIN", None)
        else:
            os.environ["REPRO_ANTICHAIN"] = self.previous


# ---------------------------------------------------------------------- #
# workloads
# ---------------------------------------------------------------------- #

EMPTY_SIG = Signature.empty()

MESH_STATES = 6


def _mesh_automaton(k):
    """A state cycle whose guards each mention two (rotating) registers.

    Unmentioned registers are unconstrained across each step, so the
    explicit domain carries close to Bell(k) types at every state while
    each antichain transfer only enumerates Bell(2) sigma-restrictions --
    the exact workload shape the sigma-reduction targets.
    """
    states = ["s%d" % index for index in range(MESH_STATES)]
    transitions = []
    for index in range(MESH_STATES):
        a = index % k + 1
        b = a % k + 1
        merge = SigmaType([eq(X(a), X(b)), eq(X(a), Y(b))])
        split = SigmaType([neq(X(a), X(b)), eq(X(b), Y(a))])
        target = states[(index + 1) % MESH_STATES]
        transitions.append((states[index], merge, target))
        transitions.append((states[index], split, target))
    return RegisterAutomaton(
        k, EMPTY_SIG, set(states), {states[0]}, {states[-1]}, transitions
    )


def _complete_k8_extended():
    """Complete-guard k=8 automaton with a provably dead junk subgraph.

    One outgoing guard per state keeps normalisation the identity whether
    or not the pruner ran, so the two modes' witnesses compare byte for
    byte (mirrors ``tests/test_antichain.py``).
    """
    k = 8
    chain = lambda terms: [eq(left, right) for left, right in zip(terms, terms[1:])]
    xs = [X(i) for i in range(1, k + 1)]
    ys = [Y(i) for i in range(1, k + 1)]
    all_equal = SigmaType(chain(xs + ys))
    x1_apart = SigmaType(chain(xs[1:] + ys) + [neq(X(1), X(2))])
    automaton = RegisterAutomaton(
        k,
        EMPTY_SIG,
        {"q0", "q1", "mid", "junk"},
        {"q0"},
        {"q1", "junk"},
        [
            ("q0", all_equal, "q1"),
            ("q0", all_equal, "mid"),
            ("q1", all_equal, "q1"),
            ("mid", x1_apart, "junk"),
            ("junk", x1_apart, "junk"),
        ],
    )
    factor = concat(literal("q0"), literal("q0"))  # never matches
    return ExtendedAutomaton(automaton, [GlobalConstraint("neq", 1, 1, factor)])


# ---------------------------------------------------------------------- #
# experiments
# ---------------------------------------------------------------------- #


def _solve(automaton):
    outcome = reachable_types_outcome(automaton)
    assert outcome.ok
    # Rebuild-free repeats would be unrealistically cheap: drop the
    # transfer-function memos so every round pays the transfer.
    types_module._ABSTRACT_SUCCESSORS.clear()
    types_module._SUCCESSOR_ATOMS.clear()
    return outcome.value


def _state_fingerprint(types):
    automaton = types.automaton
    return (
        {
            state: frozenset(phi.pretty() for phi in types.types_at(state))
            for state in automaton.states
        },
        tuple(types.feasible(t) for t in automaton.transitions),
        types.unreachable_states(),
    )


def _antichain_elements(types):
    """(stored intervals, represented types) over all states."""
    k = types.automaton.k
    stored = represented = 0
    for state in types.automaton.states:
        intervals = types.intervals_at(state)
        stored += len(intervals)
        represented += sum(
            interval_size(e_mask, d_mask, k) for e_mask, d_mask in intervals
        )
    return stored, represented


def test_fixpoint_ab_over_register_grid():
    for k in _ab_grid():
        automaton = _mesh_automaton(k)
        with _antichain_mode(True):
            _fresh_caches()
            symbolic = _solve(automaton)
            antichain_time = _median_seconds(lambda: _solve(automaton))
        with _antichain_mode(False):
            _fresh_caches()
            explicit = _solve(automaton)
            explicit_time = _median_seconds(lambda: _solve(automaton))
        _fresh_caches()

        # Identity is part of the experiment, not just the test suite.
        if k <= 5:
            assert _state_fingerprint(symbolic) == _state_fingerprint(explicit)
        stored, represented = _antichain_elements(symbolic)
        explicit_elements = sum(
            len(explicit.types_at(state)) for state in automaton.states
        )
        assert represented == explicit_elements
        reduction = represented / stored
        if k >= 5:
            # The acceptance bar: the antichain's win grows with Bell(k),
            # it is not a constant-factor trick.
            assert reduction >= BELL[k - 1] / 4
        ROWS_FIXPOINT.append(
            (
                "k=%d" % k,
                BELL[k - 1],
                "%.4f" % antichain_time,
                "%.4f" % explicit_time,
                "%.2fx" % (explicit_time / antichain_time),
                "%d/%d" % (stored, explicit_elements),
                "%.0fx" % reduction,
            )
        )


def test_fixpoint_beyond_the_explicit_cap():
    for k in _antichain_grid():
        assert k > EXPLICIT_MAX_REGISTERS
        automaton = _mesh_automaton(k)
        with _antichain_mode(True):
            _fresh_caches()
            symbolic = _solve(automaton)
            antichain_time = _median_seconds(lambda: _solve(automaton))
        with _antichain_mode(False):
            declined = reachable_types_outcome(automaton)
            assert not declined.ok  # the explicit domain cannot play at all
        _fresh_caches()

        stored, represented = _antichain_elements(symbolic)
        reduction = represented / stored
        assert reduction >= BELL[k - 1] / 4
        ROWS_FIXPOINT.append(
            (
                "k=%d" % k,
                BELL[k - 1],
                "%.4f" % antichain_time,
                "-",
                "-",
                "%d/%d" % (stored, represented),
                "%.0fx" % reduction,
            )
        )


def test_emptiness_pruning_at_eight_registers():
    def decide():
        return check_emptiness(_complete_k8_extended(), max_prefix=3, max_cycle=3)

    with _antichain_mode(True):
        _fresh_caches()
        pruned_result = decide()  # also warms within-mode caches
        pruned_time = _median_seconds(decide)
    with _antichain_mode(False):
        _fresh_caches()
        baseline_result = decide()
        baseline_time = _median_seconds(decide)
    _fresh_caches()

    assert not pruned_result.empty
    assert pruned_result.witness.trace == baseline_result.witness.trace
    assert pruned_result.empty == baseline_result.empty
    assert pruned_result.exact == baseline_result.exact

    ROWS_EMPTINESS.append(
        (
            "emptiness + junk pruning (k=8, complete guards)",
            "%.4f" % pruned_time,
            "%.4f" % baseline_time,
            "%.2fx" % (baseline_time / pruned_time),
            "%d/%d"
            % (
                pruned_result.candidates_checked,
                baseline_result.candidates_checked,
            ),
        )
    )


register_table(
    "E17 (PR 6): antichain vs explicit dataflow domain",
    [
        "registers",
        "Bell(k)",
        "antichain [s]",
        "explicit [s]",
        "speedup",
        "elements a/e",
        "reduction",
    ],
    ROWS_FIXPOINT,
)

register_table(
    "E17 (PR 6): antichain-enabled pruning in constrained emptiness",
    [
        "experiment",
        "antichain [s]",
        "ablated [s]",
        "speedup",
        "candidates a/b",
    ],
    ROWS_EMPTINESS,
)
