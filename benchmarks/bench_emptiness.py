"""E5 -- emptiness of extended automata (Theorem 9 / Corollary 10).

Measures the emptiness decision on (a) the paper's Examples 7/8 and their
empty variants, (b) random extended automata, cross-checked against
concrete bounded run search where applicable.

Expected shape: nonempty verdicts come with verified witnesses; the p-only
variant of Example 8 (the quasi-regular boundary) is correctly empty;
random instances agree with concrete search.
"""

import random

import pytest

from repro import Database, ExtendedAutomaton, Signature, check_emptiness, find_lasso_run
from repro.generators import random_extended_automaton, random_register_automaton

from _tables import register_table

ROWS = []


def test_example7(benchmark, example7_extended):
    result = benchmark(check_emptiness, example7_extended)
    assert not result.empty
    ROWS.append(("Example 7 (all distinct)", "nonempty", result.candidates_checked))


def test_example8(benchmark, example8_extended):
    result = benchmark(lambda: check_emptiness(example8_extended, max_prefix=1, max_cycle=4))
    assert not result.empty
    ROWS.append(("Example 8 (p-blocks)", "nonempty", result.candidates_checked))


def test_example8_p_only(benchmark, example8_extended):
    from repro import GlobalConstraint, RegisterAutomaton, SigmaType, X, rel
    from repro.automata.regex import concat, literal, star

    signature = Signature(relations={"P": 1})
    guard = SigmaType([rel("P", X(1))])
    base = RegisterAutomaton(1, signature, {"p"}, {"p"}, {"p"}, [("p", guard, "p")])
    p_block = concat(literal("p"), star(literal("p")), literal("p"))
    extended = ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, p_block)])
    result = benchmark(lambda: check_emptiness(extended, max_prefix=1, max_cycle=3))
    assert result.empty
    ROWS.append(("Example 8, p-only", "empty", result.candidates_checked))


def test_random_agreement(benchmark):
    """Symbolic emptiness vs concrete search on constraint-free instances."""
    rng = random.Random(4242)
    database = Database(Signature.empty())
    instances = [
        random_register_automaton(rng, k=1, n_states=3, n_transitions=4, ensure_live=False)
        for _ in range(6)
    ]

    def run_all():
        agreements = 0
        for automaton in instances:
            symbolic = not check_emptiness(ExtendedAutomaton(automaton, [])).empty
            concrete = find_lasso_run(automaton, database, pool=("a", "b", "c")) is not None
            agreements += symbolic == concrete
        return agreements

    agreements = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert agreements == len(instances)
    ROWS.append(("random x%d vs search" % len(instances), "agree", agreements))


register_table(
    "E5: emptiness decisions",
    ["instance", "verdict", "candidates / agreements"],
    ROWS,
)
