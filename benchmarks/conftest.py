"""Shared builders for the benchmark suite.

Run with ``PYTHONPATH=src`` (the repo convention -- see README.md); the
``_tables`` helper resolves through pytest's rootdir insertion of this
directory, so no ``sys.path`` surgery happens here.
"""

import os
import random

import pytest

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    eq,
    neq,
    rel,
)
from repro.automata.regex import concat, literal, plus, star


@pytest.fixture
def example1_automaton():
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    return RegisterAutomaton(
        2,
        Signature.empty(),
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )


@pytest.fixture
def example7_extended():
    empty = SigmaType()
    base = RegisterAutomaton(
        1, Signature.empty(), {"q"}, {"q"}, {"q"}, [("q", empty, "q")]
    )
    all_distinct = concat(literal("q"), plus(literal("q")))
    return ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, all_distinct)])


@pytest.fixture
def example8_extended():
    signature = Signature(relations={"P": 1})
    guard = SigmaType([rel("P", X(1))])
    base = RegisterAutomaton(
        1,
        signature,
        {"p", "q"},
        {"p"},
        {"p", "q"},
        [("p", guard, "p"), ("p", guard, "q"), ("q", guard, "q"), ("q", guard, "p")],
    )
    p_block = concat(literal("p"), star(literal("p")), literal("p"))
    return ExtendedAutomaton(base, [GlobalConstraint("neq", 1, 1, p_block)])


@pytest.fixture
def rng():
    return random.Random(20260707)


def pytest_sessionfinish(session, exitstatus):
    """Print the experiment tables, then write the BENCH_4.json report.

    The report path defaults to ``BENCH_4.json`` in the invocation
    directory and can be redirected with ``REPRO_BENCH_JSON`` (CI points
    it at the artifact staging directory); setting it to the empty string
    or ``0`` suppresses the file.
    """
    from _tables import REGISTRY, print_table, write_session_json

    for title, headers, rows in REGISTRY:
        if rows:
            print_table(title, headers, rows)
    _print_cache_effectiveness()
    target = os.environ.get("REPRO_BENCH_JSON", "BENCH_4.json")
    if target and target != "0":
        write_session_json(target, session.config)
        print("\nbenchmark report written to %s" % target)


def _print_cache_effectiveness():
    """The E11 observability companion: one row per cache that saw traffic."""
    from repro.core.caching import all_cache_stats
    from _tables import print_table

    rows = []
    for name, snap in all_cache_stats().items():
        lookups = snap["hits"] + snap["misses"]
        if not lookups:
            continue
        rows.append(
            (
                name,
                snap["hits"],
                snap["misses"],
                "%.1f%%" % (100.0 * snap["hit_rate"]),
                snap["evictions"],
                snap["peak_entries"],
            )
        )
    if rows:
        print_table(
            "Cache effectiveness",
            ("cache", "hits", "misses", "hit rate", "evictions", "peak entries"),
            rows,
        )
