"""E6 -- LTL-FO verification (Theorem 12).

Verifies a family of properties of growing temporal depth against the
Example-1 automaton and the review workflow, reporting property-automaton
and product sizes plus decision time.

Expected shape: cost grows with the negated property's Buchi automaton
(exponential in formula size, the classical LTL blow-up), not with the data.
"""

import pytest

from repro import ExtendedAutomaton, LtlFoSentence, manuscript_review_workflow, verify
from repro.logic.formulas import atom_eq
from repro.logic.terms import X
from repro.ltl import Eventually, Globally, Next, Prop
from repro.ltl.syntax import Not_, Or_, Until

from _tables import register_table

ROWS = []


def _eq12():
    return {"eq12": atom_eq(X(1), X(2))}


PROPERTIES = [
    ("F eq12", Eventually(Prop("eq12")), True),
    ("G eq12", Globally(Prop("eq12")), False),
    ("G(eq12 -> F eq12)", Globally(Or_(Not_(Prop("eq12")), Eventually(Prop("eq12")))), True),
    ("GF eq12", Globally(Eventually(Prop("eq12"))), True),
    ("X X eq12", Next(Next(Prop("eq12"))), False),
    # fails: runs may leave eq12 false from position 1 onwards for a while
    ("eq12 U (X eq12)", Until(Prop("eq12"), Next(Prop("eq12"))), False),
]


@pytest.mark.parametrize("name,skeleton,expected", PROPERTIES, ids=[p[0] for p in PROPERTIES])
def test_verify_example1(benchmark, example1_automaton, name, skeleton, expected):
    sentence = LtlFoSentence(skeleton=skeleton, propositions=_eq12())
    extended = ExtendedAutomaton(example1_automaton, [])
    result = benchmark(verify, extended, sentence)
    assert result.holds == expected
    ROWS.append((name, "holds" if result.holds else "fails", result.product_size))


def test_verify_workflow(benchmark):
    spec = manuscript_review_workflow(with_database=False)
    extended = ExtendedAutomaton(spec.compile(), [])
    author, reviewer = spec.register_of("author"), spec.register_of("reviewer")
    sentence = LtlFoSentence(
        skeleton=Eventually(Prop("distinct")),
        propositions={"distinct": ~atom_eq(X(author), X(reviewer))},
    )
    result = benchmark(verify, extended, sentence)
    assert result.holds
    ROWS.append(("review: F(rev != auth)", "holds", result.product_size))


register_table(
    "E6: LTL-FO verification",
    ["property", "verdict", "product size"],
    ROWS,
)
