"""E15 (PR 4) -- dataflow fixpoint cost and feasibility-proved pruning.

Three experiments, recorded as rows in the session table (and hence in
``BENCH_4.json``):

* **dataflow fixpoint**: the cost of :func:`analyze_reachable_types`
  itself, on a register-rich chain-with-back-edges automaton -- the price
  every pruning consumer pays up front.
* **emptiness + narrowing (Example 2/3, violated constraint)**: the
  inequality constraint is violated inside every candidate word, so the
  :class:`~repro.core.pruning.ConstraintNarrowing` filter prunes whole
  enumeration subtrees.  A/B over ``REPRO_PRUNE``; the verdict (empty)
  and every reported bound must match the baseline exactly while
  ``candidates_checked`` shrinks.
* **emptiness + junk pruning (funnel)**: a funnel automaton whose split
  transition is *pairwise* guard-consistent with its neighbours but
  infeasible under the dataflow invariant (registers provably equal at
  the split source); behind it sits a junk cycle of accepting states.
  Completion makes every guard a complete type, so the symbolic control
  graph itself rejects the junk candidates either way -- but the
  baseline still pays to complete, state-drive and enumerate over the
  junk subgraph, which pruning removes before normalisation starts.
  The verdict (non-empty), the winning witness trace and the candidate
  count must all be identical.

Between A/B modes every shared cache is cleared, so neither mode serves
entries computed by the other.  Quick mode (``REPRO_BENCH_QUICK=1``)
shrinks the junk cycle, the chain length and the repeat count; all knobs
are read at call time (ENV001).
"""

import gc
import os
import statistics
import time

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    check_emptiness,
    eq,
    neq,
)
from repro.analysis.dataflow import analyze_reachable_types
from repro.logic import types as types_module
from repro.automata.regex import concat, literal, plus
from repro.core.caching import clear_value_caches
from repro.foundations.interning import clear_intern_tables

from _tables import register_table


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _repeats():
    return 3 if _quick() else 5


def _junk_size():
    return 4 if _quick() else 8


def _chain_length():
    return 20 if _quick() else 60


ROWS = []


def _median_seconds(fn, repeats=None):
    if repeats is None:
        repeats = _repeats()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _fresh_caches():
    clear_value_caches()
    clear_intern_tables()
    gc.collect()


def _fingerprint(result):
    witness = result.witness
    return (
        result.empty,
        result.exact,
        result.max_prefix,
        result.max_cycle,
        None if witness is None else witness.trace,
    )


def _prune_ablation(label, make_extended, max_prefix, max_cycle):
    """Median emptiness seconds with REPRO_PRUNE on and off, plus the
    in-bench soundness assertions (identical verdict/witness, fewer
    candidates)."""

    def decide():
        return check_emptiness(
            make_extended(), max_prefix=max_prefix, max_cycle=max_cycle
        )

    previous = os.environ.get("REPRO_PRUNE")
    try:
        os.environ["REPRO_PRUNE"] = "1"
        _fresh_caches()
        pruned_result = decide()  # also warms within-mode caches
        pruned_time = _median_seconds(decide)

        os.environ["REPRO_PRUNE"] = "0"
        _fresh_caches()
        baseline_result = decide()
        baseline_time = _median_seconds(decide)
    finally:
        if previous is None:
            os.environ.pop("REPRO_PRUNE", None)
        else:
            os.environ["REPRO_PRUNE"] = previous
    _fresh_caches()

    # Soundness is part of the experiment, not just the test suite.
    assert _fingerprint(pruned_result) == _fingerprint(baseline_result)
    assert pruned_result.candidates_checked <= baseline_result.candidates_checked

    ROWS.append(
        (
            label,
            "%.4f" % pruned_time,
            "%.4f" % baseline_time,
            "%.2fx" % (baseline_time / pruned_time),
            "%d/%d"
            % (pruned_result.candidates_checked, baseline_result.candidates_checked),
        )
    )
    return pruned_result, baseline_result


# ---------------------------------------------------------------------- #
# workloads
# ---------------------------------------------------------------------- #

EMPTY_SIG = Signature.empty()

FORCE = SigmaType([eq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])
KEEP = SigmaType([eq(X(1), Y(1)), eq(X(2), Y(2))])
SPLIT = SigmaType([neq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2))])


def _example23_extended():
    d1 = SigmaType([eq(X(1), X(2)), eq(X(2), Y(2))])
    d2 = SigmaType([eq(X(2), Y(2))])
    d3 = SigmaType([eq(X(2), Y(2)), eq(Y(1), Y(2))])
    automaton = RegisterAutomaton(
        2,
        EMPTY_SIG,
        {"q1", "q2"},
        {"q1"},
        {"q1"},
        [("q1", d1, "q2"), ("q2", d2, "q2"), ("q2", d3, "q1")],
    )
    factor = concat(literal("q1"), plus(literal("q2")), literal("q1"))
    return ExtendedAutomaton(automaton, [GlobalConstraint("neq", 1, 1, factor)])


MAIN_LOOP = 6


def _funnel_with_junk():
    """Registers provably equal at m2; the split edge guards a junk cycle.

    Pairwise conjunction of the *declared* guards cannot refute the
    split (KEEP alone does not force ``x1 = x2``); only the dataflow
    fixpoint proves the subgraph dead on the original automaton.  The
    emptiness pipeline's completion step would also exclude it -- at the
    price of completing and enumerating over every junk state, which is
    exactly the cost the pruner deletes up front.
    """
    n = _junk_size()
    junk = ["j%d" % index for index in range(n)]
    main = ["m%d" % index for index in range(1, MAIN_LOOP + 1)]
    states = {"q0", *main, *junk}
    transitions = [("q0", FORCE, main[0])]
    for index in range(MAIN_LOOP):
        transitions.append((main[index], KEEP, main[(index + 1) % MAIN_LOOP]))
    transitions.append((main[1], SPLIT, junk[0]))
    for index, state in enumerate(junk):
        transitions.append((state, KEEP, junk[(index + 1) % n]))
        transitions.append((state, KEEP, junk[(index + 2) % n]))
    automaton = RegisterAutomaton(
        2, EMPTY_SIG, states, {"q0"}, {main[-1], junk[0]}, transitions
    )
    # A never-matching factor: the constraint machinery (and hence the
    # candidate enumeration) is exercised, but no candidate is rejected
    # for constraint reasons -- the junk rejections are pure waste that
    # pruning removes.
    factor = concat(literal("q0"), literal("q0"))
    return ExtendedAutomaton(automaton, [GlobalConstraint("neq", 1, 1, factor)])


def _chain_automaton():
    """A k=3 chain with back edges: the fixpoint has real work to do."""
    n = _chain_length()
    states = ["c%d" % index for index in range(n)]
    merge = SigmaType([eq(X(1), X(2)), eq(X(1), Y(1)), eq(X(2), Y(2)), eq(X(3), Y(3))])
    shuffle = SigmaType([eq(X(1), Y(2)), eq(X(2), Y(3)), eq(X(3), Y(1))])
    free = SigmaType([eq(X(1), Y(1))])
    guards = (merge, shuffle, free)
    transitions = []
    for index in range(n - 1):
        transitions.append((states[index], guards[index % 3], states[index + 1]))
        if index % 5 == 0 and index:
            transitions.append((states[index], free, states[index // 2]))
    transitions.append((states[-1], shuffle, states[0]))
    return RegisterAutomaton(
        3, EMPTY_SIG, states, {states[0]}, {states[-1]}, transitions
    )


# ---------------------------------------------------------------------- #
# experiments
# ---------------------------------------------------------------------- #


def test_fixpoint_cost():
    automaton = _chain_automaton()

    def solve():
        types = analyze_reachable_types(automaton)
        assert types is not None
        # Rebuild-free repeat would be unrealistically cheap: drop the
        # transfer-function memos so every round pays the transfer.
        types_module._ABSTRACT_SUCCESSORS.clear()
        types_module._SUCCESSOR_ATOMS.clear()
        return types

    _fresh_caches()
    solve()
    seconds = _median_seconds(solve)
    ROWS.append(
        ("dataflow fixpoint (n=%d, k=3)" % _chain_length(),
         "%.4f" % seconds, "-", "-", "-")
    )


def test_narrowing_collapses_violated_search():
    # Bounds chosen so candidate checking dominates: the baseline must
    # reject ~2k candidates one by one while the narrowing filter prunes
    # the shared prefixes once.
    max_prefix = 2 if _quick() else 3
    pruned, baseline = _prune_ablation(
        "emptiness + narrowing (Example 2/3)",
        _example23_extended,
        max_prefix=max_prefix,
        max_cycle=6,
    )
    assert pruned.empty
    assert pruned.candidates_checked < baseline.candidates_checked


def test_junk_subgraph_pruned_before_search():
    pruned, baseline = _prune_ablation(
        "emptiness + junk pruning (funnel, %d junk states)" % _junk_size(),
        _funnel_with_junk,
        max_prefix=MAIN_LOOP,
        max_cycle=MAIN_LOOP,
    )
    assert not pruned.empty
    assert pruned.witness.trace == baseline.witness.trace
    # Complete guards make junk candidates locally refutable, so the
    # candidate count matches; the win is the smaller normalisation and
    # enumeration graph (see the table's timing columns).
    assert pruned.candidates_checked == baseline.candidates_checked


register_table(
    "E15 (PR 4): dataflow analysis and feasibility-proved pruning",
    ["experiment", "pruned [s]", "unpruned [s]", "speedup", "candidates p/b"],
    ROWS,
)
