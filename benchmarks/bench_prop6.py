"""E4 -- Proposition 6: eliminating global equality constraints.

The construction adds one register per state of each equality-constraint
DFA, plus control-state bookkeeping.  We sweep the constraint-DFA size
(longer anchored expressions) and report register/state/transition growth
and elimination time.

Expected shape: register growth exactly equals the total DFA state count;
control grows with the subset bookkeeping (worst case exponential, modest
on anchored constraints).
"""

import pytest

from repro import ExtendedAutomaton, GlobalConstraint, RegisterAutomaton, SigmaType, Signature
from repro.automata.regex import concat, literal, star, word
from repro.core.extended import eliminate_equality_constraints

from _tables import register_table

ROWS = []

EMPTY = SigmaType()


def _cycle_automaton(n_states: int) -> RegisterAutomaton:
    states = ["s%d" % i for i in range(n_states)]
    transitions = [
        (states[i], EMPTY, states[(i + 1) % n_states]) for i in range(n_states)
    ]
    return RegisterAutomaton(
        1, Signature.empty(), states, {states[0]}, {states[0]}, transitions
    )


@pytest.mark.parametrize("cycle", [2, 3, 4])
def test_elimination_growth(benchmark, cycle):
    automaton = _cycle_automaton(cycle)
    # equality between consecutive visits of s0: anchored regex s0 ... s0
    middle = star(
        __import__("repro.automata.regex", fromlist=["any_of"]).any_of(
            ["s%d" % i for i in range(1, cycle)]
        )
    )
    expression = concat(literal("s0"), middle, literal("s0"))
    extended = ExtendedAutomaton(automaton, [GlobalConstraint("eq", 1, 1, expression)])
    eliminated, _k = benchmark(eliminate_equality_constraints, extended)
    dfa = extended.constraint_dfa(extended.constraints[0])
    ROWS.append(
        (
            cycle,
            dfa.size(),
            eliminated.automaton.k,
            len(eliminated.automaton.states),
            len(eliminated.automaton.transitions),
        )
    )
    assert eliminated.automaton.k == 1 + dfa.size()


register_table(
    "E4: Proposition 6 elimination growth",
    ["cycle length", "constraint DFA", "registers out", "states out", "transitions out"],
    ROWS,
)
