"""Small table-printing helper shared by the benchmark suite.

Each benchmark prints the data series of its experiment (DESIGN.md E1-E12)
so the run log doubles as the reproduction record in EXPERIMENTS.md.
"""

from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print()
    print("== %s ==" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


#: Tables registered by benchmark modules, printed at session end by the
#: benchmarks conftest (so --benchmark-only runs still show them).
REGISTRY = []


def register_table(title: str, headers: Sequence[str], rows: list) -> None:
    """Register a (mutable) row list to be printed when the session ends."""
    REGISTRY.append((title, headers, rows))
