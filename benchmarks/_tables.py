"""Table printing and JSON serialisation shared by the benchmark suite.

Each benchmark prints the data series of its experiment (DESIGN.md E1-E12)
so the run log doubles as the reproduction record in EXPERIMENTS.md.  The
same registry is serialised to a machine-readable JSON report (named by
``REPRO_BENCH_JSON``, default ``BENCH_4.json``) at session end, together
with the pytest-benchmark timing statistics and the cache/intern-table
counters, so CI can archive one artifact per run instead of scraping the
log.
"""

import json
import os
from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print()
    print("== %s ==" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


#: Tables registered by benchmark modules, printed at session end by the
#: benchmarks conftest (so --benchmark-only runs still show them).
REGISTRY = []


def register_table(title: str, headers: Sequence[str], rows: list) -> None:
    """Register a (mutable) row list to be printed when the session ends."""
    REGISTRY.append((title, headers, rows))


# ---------------------------------------------------------------------- #
# machine-readable session report (BENCH_*.json)
# ---------------------------------------------------------------------- #


def registry_payload() -> list:
    """Every registered table that collected rows, as plain JSON data."""
    return [
        {
            "title": title,
            "headers": [str(header) for header in headers],
            "rows": [[str(cell) for cell in row] for row in rows],
        }
        for title, headers, rows in REGISTRY
        if rows
    ]


def timing_payload(config) -> list:
    """Per-benchmark timing statistics from pytest-benchmark.

    One entry per measured benchmark with the median front and centre
    (the suite's headline statistic) plus mean/stddev/min/max/rounds.
    Empty when pytest-benchmark is absent or disabled -- the report is
    still valid, just timing-free.
    """
    session = getattr(config, "_benchmarksession", None)
    if session is None:
        return []
    entries = []
    for bench in getattr(session, "benchmarks", ()):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        entries.append(
            {
                "name": getattr(bench, "name", None),
                "fullname": getattr(bench, "fullname", None),
                "group": getattr(bench, "group", None),
                "median": stats.median,
                "mean": stats.mean,
                "stddev": stats.stddev,
                "min": stats.min,
                "max": stats.max,
                "rounds": stats.rounds,
            }
        )
    return entries


def session_payload(config, report: str = "BENCH_4") -> dict:
    """The full session report: tables, timings, cache and intern stats."""
    from repro.core.caching import all_cache_stats
    from repro.foundations.interning import (
        intern_table_sizes,
        interning_enabled,
    )
    from repro.core.parallel import worker_count

    return {
        "report": report,
        "interning_enabled": interning_enabled(),
        "workers": worker_count(),
        "cpu_count": os.cpu_count(),
        "tables": registry_payload(),
        "benchmarks": timing_payload(config),
        "cache_stats": all_cache_stats(),
        "intern_tables": intern_table_sizes(),
    }


def write_session_json(path: str, config) -> None:
    """Serialise :func:`session_payload` to *path* (UTF-8, indented).

    The report name inside the payload is the file's stem, so redirecting
    ``REPRO_BENCH_JSON`` also renames the report it contains.
    """
    stem = os.path.splitext(os.path.basename(path))[0] or "BENCH"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            session_payload(config, report=stem), handle, indent=2, sort_keys=True
        )
        handle.write("\n")
