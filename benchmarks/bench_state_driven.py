"""E2 -- state-driven conversion is quadratic (Section 2, Example 3).

The conversion replaces states by (state, guard) pairs: the new state count
is the number of distinct transition sources-with-guards, and the new
transition count is bounded by |Delta|^2.  We sweep |Delta| on random
automata with a fixed state count and report the measured sizes.

Expected shape: states grow linearly with |Delta|, transitions at most
quadratically; Example 3's instance gives 3 states / 5 transitions.
"""

import random

import pytest

from repro.generators import random_register_automaton

from _tables import register_table

ROWS = []


@pytest.mark.parametrize("n_transitions", [4, 8, 12, 16])
def test_state_driven_growth(benchmark, n_transitions):
    rng = random.Random(1000 + n_transitions)
    automaton = random_register_automaton(
        rng, k=2, n_states=3, n_transitions=n_transitions
    )
    driven = benchmark(automaton.state_driven)
    assert driven.is_state_driven()
    ROWS.append(
        (
            n_transitions,
            len(automaton.states),
            len(driven.states),
            len(driven.transitions),
        )
    )


def test_example3_shape(benchmark, example1_automaton):
    driven = benchmark(example1_automaton.state_driven)
    assert len(driven.states) == 3
    assert len(driven.transitions) == 5
    ROWS.append(("Example 3", 2, 3, 5))


register_table(
    "E2: state-driven conversion growth",
    ["|Delta| in", "|Q| in", "|Q| out", "|Delta| out"],
    ROWS,
)
