"""E18 (PR 7) -- the sound reduction layer: trim and dead-register projection.

Two A/B experiments, recorded as rows in the session table (and hence in
``BENCH_7.json``):

* **trim ablation in constrained emptiness**: the full pipeline on an
  automaton whose accepting lasso lives in a two-state core while most of
  the graph is a reachable junk region (cyclic chains that never reach an
  accepting cycle).  Under ``REPRO_REDUCE=1`` the trim drops the junk
  before normalisation; under ``=0`` every downstream stage walks it.
  Byte-identity is part of the experiment, not just the test suite: the
  verdict, the winning witness, *and* ``candidates_checked`` are asserted
  equal between the modes -- trim is candidate-preserving, strictly
  stronger than the pruner's witness-level guarantee.
* **dead-register projection**: ``project_dead_registers`` on a
  k-register automaton where registers ``2..k`` are written (copies of
  register 1's fresh value) but live at no state.  The projection drops
  them all, and emptiness on the 1-register image is compared against the
  original for verdict equality and wall-clock.  Register 1 keeps its
  index, so the global ``neq`` constraint transfers verbatim.

Between A/B modes every shared cache is cleared, so neither mode serves
entries computed by the other.  Quick mode (``REPRO_BENCH_QUICK=1``)
shrinks the junk region and the repeat count; all knobs are read at call
time (ENV001).
"""

import gc
import os
import statistics
import time

from repro import (
    ExtendedAutomaton,
    GlobalConstraint,
    RegisterAutomaton,
    SigmaType,
    Signature,
    X,
    Y,
    check_emptiness,
    eq,
    neq,
)
from repro.automata.regex import concat, literal, plus
from repro.core.caching import clear_value_caches
from repro.core.reduction import project_dead_registers, trim_extended
from repro.foundations.interning import clear_intern_tables

from _tables import register_table


def _quick():
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _repeats():
    return 3 if _quick() else 5


ROWS_TRIM = []
ROWS_PROJECTION = []


def _median_seconds(fn, repeats=None):
    if repeats is None:
        repeats = _repeats()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _fresh_caches():
    clear_value_caches()
    clear_intern_tables()
    gc.collect()


class _reduce_mode:
    """Pin ``REPRO_REDUCE`` for one A/B leg (restores on exit)."""

    def __init__(self, enabled):
        self.value = "1" if enabled else "0"

    def __enter__(self):
        self.previous = os.environ.get("REPRO_REDUCE")
        os.environ["REPRO_REDUCE"] = self.value

    def __exit__(self, *exc_info):
        if self.previous is None:
            os.environ.pop("REPRO_REDUCE", None)
        else:
            os.environ["REPRO_REDUCE"] = self.previous


def _fingerprint(result):
    """Everything the byte-identity claim covers, witness and work included."""
    witness = result.witness
    trace = None if witness is None else witness.trace
    return (result.empty, result.exact, trace, result.candidates_checked)


# ---------------------------------------------------------------------- #
# workloads
# ---------------------------------------------------------------------- #

EMPTY_SIG = Signature.empty()

KEEP1 = SigmaType([eq(X(1), Y(1))])
FRESH1 = SigmaType([neq(X(1), Y(1))])


def _junky_extended(chains, depth, k=2):
    """A two-state accepting core plus ``chains`` cyclic junk chains.

    Every state fires a single guard (``FRESH1`` out of the core states,
    ``KEEP1`` inside the junk), so trimming the junk changes neither
    ``is_complete`` nor ``is_state_driven`` -- the guard rails stay
    quiet and the trim actually fires.  The junk chains cycle back on
    themselves: reachable, full of candidate-cycle structure, and
    provably free of accepting lassos.  The language is nonempty (every
    step out of the core picks a fresh value), so the byte-identity
    assertion covers a real witness.

    The guards are incomplete and mention only register 1, but the
    automaton carries ``k`` registers: normalisation completes *every*
    transition over the full 2k-variable vocabulary (Bell-many
    completions each), so the untrimmed pipeline pays that per junk
    transition -- the cost the trim removes.
    """
    states = {"s", "acc"}
    transitions = [("s", FRESH1, "acc"), ("acc", FRESH1, "acc")]
    for chain in range(chains):
        names = ["c%d_%d" % (chain, index) for index in range(depth)]
        states.update(names)
        transitions.append(("s", FRESH1, names[0]))
        for source, target in zip(names, names[1:]):
            transitions.append((source, KEEP1, target))
        transitions.append((names[-1], KEEP1, names[0]))
    automaton = RegisterAutomaton(
        k, EMPTY_SIG, states, {"s"}, {"acc"}, transitions
    )
    factor = concat(literal("s"), plus(literal("acc")))
    return ExtendedAutomaton(automaton, [GlobalConstraint("neq", 1, 1, factor)])


def _write_only_extended(k):
    """k registers; only register 1 is ever live.

    Registers ``2..k`` receive copies of register 1's fresh value on the
    entry edge -- written, never read, never copied into a live register
    -- so :func:`project_dead_registers` drops them all.  Register 1
    keeps index 1 in the image, so the same global constraint applies to
    both sides of the A/B.
    """
    entry = SigmaType(
        [neq(X(1), Y(1))] + [eq(Y(i), Y(1)) for i in range(2, k + 1)]
    )
    automaton = RegisterAutomaton(
        k,
        EMPTY_SIG,
        {"p", "q"},
        {"p"},
        {"q"},
        [("p", entry, "q"), ("q", FRESH1, "q")],
    )
    return automaton


def _constrained(automaton):
    factor = concat(literal("p"), plus(literal("q")))
    return ExtendedAutomaton(automaton, [GlobalConstraint("neq", 1, 1, factor)])


# ---------------------------------------------------------------------- #
# experiments
# ---------------------------------------------------------------------- #


def test_trim_ablation_in_constrained_emptiness():
    chains, depth = (5, 6) if _quick() else (12, 10)
    extended = _junky_extended(chains, depth)
    total_states = len(extended.automaton.states)

    def decide():
        return check_emptiness(extended, max_prefix=2, max_cycle=4)

    with _reduce_mode(True):
        _fresh_caches()
        trimmed = trim_extended(extended)
        reduced_result = decide()  # also warms within-mode caches
        reduced_time = _median_seconds(decide)
    with _reduce_mode(False):
        _fresh_caches()
        baseline_result = decide()
        baseline_time = _median_seconds(decide)
    _fresh_caches()

    # The acceptance bar: trim must actually fire on this workload, and
    # the two modes must agree byte for byte -- including the amount of
    # candidate work, which pruning alone does not promise.
    kept_states = len(trimmed.automaton.states)
    assert kept_states == 2
    assert not reduced_result.empty
    assert _fingerprint(reduced_result) == _fingerprint(baseline_result)

    ROWS_TRIM.append(
        (
            "junky core (%d chains x %d)" % (chains, depth),
            "%d/%d" % (kept_states, total_states),
            "%.4f" % reduced_time,
            "%.4f" % baseline_time,
            "%.2fx" % (baseline_time / reduced_time),
            "%d=%d"
            % (
                reduced_result.candidates_checked,
                baseline_result.candidates_checked,
            ),
        )
    )


def test_dead_register_projection():
    # k = 4 already sends the original past a minute (the eq-saturated
    # entry guard is the expensive completion shape); k = 3 is the
    # largest point where the A/B stays honest on both sides.
    k = 2 if _quick() else 3
    original = _write_only_extended(k)
    projected, dropped = project_dead_registers(original)
    assert dropped == tuple(range(2, k + 1))
    assert projected.k == 1

    def decide(automaton):
        return check_emptiness(_constrained(automaton), max_prefix=2, max_cycle=3)

    _fresh_caches()
    projected_result = decide(projected)
    projected_time = _median_seconds(lambda: decide(projected))
    _fresh_caches()
    original_result = decide(original)
    original_time = _median_seconds(lambda: decide(original))
    _fresh_caches()

    # Projection promises the verdict, not the byte-exact witness: the
    # register count (and with it the completion shape) changed.
    assert original_result.empty == projected_result.empty
    assert original_result.exact == projected_result.exact
    assert not original_result.empty

    ROWS_PROJECTION.append(
        (
            "write-only copies (k=%d)" % k,
            "%d/%d" % (projected.k, k),
            "%.4f" % projected_time,
            "%.4f" % original_time,
            "%.2fx" % (original_time / projected_time),
            "nonempty=nonempty",
        )
    )


register_table(
    "E18 (PR 7): trim ablation in constrained emptiness",
    [
        "workload",
        "states t/u",
        "reduce [s]",
        "ablated [s]",
        "speedup",
        "candidates r=a",
    ],
    ROWS_TRIM,
)

register_table(
    "E18 (PR 7): dead-register projection",
    [
        "workload",
        "registers p/o",
        "projected [s]",
        "original [s]",
        "speedup",
        "verdict p/o",
    ],
    ROWS_PROJECTION,
)
