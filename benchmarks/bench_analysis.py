"""Analysis throughput: the diagnostics engine must stay off the hot path.

Runs the full registered pass set over random register automata on a
states x transitions grid and reports per-automaton analysis cost and the
findings breakdown.  Generated automata are valid by construction, so the
reports must carry no ERROR diagnostics -- the benchmark doubles as a
large-sample soundness check for the passes.

Expected shape: cost grows roughly linearly with the transition count
(each pass is a linear sweep or a BFS; the completeness pass is quadratic
in the per-guard vocabulary but the vocabulary is fixed at k=2 here).
"""

import random

import pytest

from repro.analysis import Severity, analyze
from repro.generators import random_register_automaton

from _tables import register_table

ROWS = []

GRID = [
    (4, 8),
    (8, 24),
    (16, 64),
    (32, 160),
]


@pytest.mark.parametrize("n_states,n_transitions", GRID)
def test_analysis_throughput(benchmark, n_states, n_transitions):
    rng = random.Random(20260807 + n_states)
    automata = [
        random_register_automaton(
            rng, k=2, n_states=n_states, n_transitions=n_transitions
        )
        for _ in range(5)
    ]

    def run_all():
        return [analyze(automaton) for automaton in automata]

    reports = benchmark(run_all)
    for report in reports:
        assert report.ok, report.render()
    findings = sum(len(r) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    ROWS.append(
        (
            "%d x %d" % (n_states, n_transitions),
            len(automata),
            findings,
            warnings,
            findings - warnings,  # the rest is INFO on valid automata
        )
    )


def test_analysis_scales_with_guard_reuse(benchmark):
    """State-driven outputs share guards heavily; analysis must not re-pay."""
    rng = random.Random(99)
    automaton = random_register_automaton(rng, k=2, n_states=6, n_transitions=18)
    converted = automaton.state_driven()

    report = benchmark(lambda: analyze(converted))
    assert report.ok
    assert not any(d.code == "RA140" for d in report)
    ROWS.append(
        (
            "state-driven |Q|=%d" % len(converted.states),
            1,
            len(report),
            len(report.warnings),
            len(report.infos),
        )
    )


register_table(
    "Analysis throughput (k=2 random automata)",
    ["grid (states x transitions)", "automata", "findings", "warnings", "infos"],
    ROWS,
)
